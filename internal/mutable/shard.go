package mutable

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dynrtree"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/shard"
)

// baseView is one immutable generation of a shard's packed base. Readers
// load it through an atomic pointer; the compactor publishes a fresh one and
// never mutates a published view, so the empty-overlay fast path needs no
// lock at all.
type baseView struct {
	tree  *rtree.Tree
	items []rtree.Item
	// has is the base's membership set (ids packed into tree).
	has map[uint32]struct{}
	// over carries geometry for base ids whose segment differs from the
	// base dataset — inserted ids and moved originals folded by earlier
	// compactions. Ids absent here resolve through Dataset.Seg.
	over   map[uint32]geom.Segment
	bounds geom.Rect
}

func (bv *baseView) seg(ds segDataset, id uint32) geom.Segment {
	if seg, ok := bv.over[id]; ok {
		return seg
	}
	return ds.Seg(id)
}

type segDataset interface {
	Seg(id uint32) geom.Segment
	Len() int
}

// frozenView is the overlay detached at the start of a compaction: the
// compactor folds it into the next base while fresh writes keep landing in
// the live overlay above it. It is immutable once published.
type frozenView struct {
	delta   *dynrtree.Tree
	overSeg map[uint32]geom.Segment
	tombs   map[uint32]struct{}
}

func (f *frozenView) size() int { return len(f.overSeg) + len(f.tombs) }

func newDelta(nodeBytes int) (*dynrtree.Tree, error) {
	return dynrtree.New(dynrtree.Config{NodeBytes: nodeBytes})
}

// mshard is one updatable shard: packed base + live delta overlay +
// optional frozen overlay mid-compaction.
//
// Layering invariant: a live id resolves in exactly one layer — live delta
// (overSeg), else frozen delta, else base — and the mask sets (overSeg keys
// and tombs at each layer) hide every stale lower copy. overSeg and tombs
// are disjoint at each layer.
type mshard struct {
	pl *Pool
	// li is the shard's unique lock-ordering id (pool-monotone; after a
	// repartition it no longer equals the shard's topology position).
	li int

	epoch atomic.Uint64
	// version counts every visible-state change: it advances (under the
	// write lock, before the write's ack) on every overlay mutation and on
	// every compaction epoch swap. The result cache (internal/qcache) keys
	// entry validity on it: equal version ⇒ identical visible contents.
	// Epoch alone would not do — an insert+delete pair can return the
	// overlay to empty with the epoch unchanged, and a result computed
	// mid-pair must not be served afterwards.
	version atomic.Uint64
	base    atomic.Pointer[baseView]
	// pend is the total overlay size (live + frozen). Zero is the
	// lock-free fast-path ticket: it only transitions 0→nonzero under
	// the write lock, and back to zero when a compaction folds the last
	// overlay entry.
	pend atomic.Int64
	// pendSince is the unix-nano arrival of the oldest unfolded write
	// (approximate across a compaction swap); 0 when the overlay is
	// empty. Staleness gauges derive from it.
	pendSince atomic.Int64
	// count is the number of live objects this shard owns — the per-range
	// item count live registration summaries report. Mutated only under
	// the pool's omu (at the same sites ownerOf changes), read lock-free.
	count atomic.Int64

	mu      sync.RWMutex
	delta   *dynrtree.Tree
	overSeg map[uint32]geom.Segment
	tombs   map[uint32]struct{}
	frozen  *frozenView
}

func newMShard(p *Pool, li int, items []rtree.Item) (*mshard, error) {
	own := make([]rtree.Item, len(items))
	copy(own, items)
	tree, err := rtree.Build(own, rtree.Config{NodeBytes: p.cfg.NodeBytes}, ops.Null{})
	if err != nil {
		return nil, fmt.Errorf("mutable: shard %d base: %w", li, err)
	}
	has := make(map[uint32]struct{}, len(own))
	for _, it := range own {
		has[it.ID] = struct{}{}
	}
	s := &mshard{pl: p, li: li}
	s.base.Store(&baseView{
		tree:   tree,
		items:  own,
		has:    has,
		over:   map[uint32]geom.Segment{},
		bounds: tree.Bounds(),
	})
	s.delta, err = newDelta(p.cfg.DeltaNodeBytes)
	if err != nil {
		return nil, fmt.Errorf("mutable: shard %d delta: %w", li, err)
	}
	s.overSeg = map[uint32]geom.Segment{}
	s.tombs = map[uint32]struct{}{}
	return s, nil
}

// ---- overlay mutation (s.mu held in write mode) ----

// beneathVisibleLocked reports whether id is visible in the layers below
// the live overlay (frozen, then base).
func (s *mshard) beneathVisibleLocked(id uint32) bool {
	if f := s.frozen; f != nil {
		if _, ok := f.overSeg[id]; ok {
			return true
		}
		if _, ok := f.tombs[id]; ok {
			return false
		}
	}
	_, ok := s.base.Load().has[id]
	return ok
}

// upsertLocked installs seg as id's live geometry and reports whether the
// shard previously held a visible id.
func (s *mshard) upsertLocked(id uint32, seg geom.Segment) bool {
	existed := false
	if old, ok := s.overSeg[id]; ok {
		s.delta.Delete(old.MBR(), id, ops.Null{})
		existed = true
	} else if _, dead := s.tombs[id]; dead {
		delete(s.tombs, id)
	} else {
		existed = s.beneathVisibleLocked(id)
	}
	s.delta.Insert(seg.MBR(), id, ops.Null{})
	s.overSeg[id] = seg
	s.pendChangedLocked()
	return existed
}

// removeLocked deletes id from the shard and reports whether it was
// visible. Idempotent: deleting an absent id is a no-op returning false.
func (s *mshard) removeLocked(id uint32) bool {
	existed := false
	if seg, ok := s.overSeg[id]; ok {
		s.delta.Delete(seg.MBR(), id, ops.Null{})
		delete(s.overSeg, id)
		existed = true
	}
	if _, dead := s.tombs[id]; !dead && s.beneathVisibleLocked(id) {
		s.tombs[id] = struct{}{}
		existed = true
	}
	s.pendChangedLocked()
	return existed
}

func (s *mshard) pendChangedLocked() {
	s.version.Add(1)
	n := len(s.overSeg) + len(s.tombs)
	if f := s.frozen; f != nil {
		n += f.size()
	}
	s.pend.Store(int64(n))
	if n == 0 {
		s.pendSince.Store(0)
	} else if s.pendSince.Load() == 0 {
		s.pendSince.Store(time.Now().UnixNano())
	}
}

// ---- read-side masks and geometry (s.mu held, read mode suffices) ----

// maskBase reports whether a base entry for id is stale: some overlay layer
// above the base owns a newer version or a tombstone.
func (s *mshard) maskBase(id uint32) bool {
	if _, ok := s.overSeg[id]; ok {
		return true
	}
	if _, ok := s.tombs[id]; ok {
		return true
	}
	if f := s.frozen; f != nil {
		if _, ok := f.overSeg[id]; ok {
			return true
		}
		if _, ok := f.tombs[id]; ok {
			return true
		}
	}
	return false
}

// maskFrozen reports whether a frozen-delta entry for id is shadowed by the
// live overlay.
func (s *mshard) maskFrozen(id uint32) bool {
	if _, ok := s.overSeg[id]; ok {
		return true
	}
	_, ok := s.tombs[id]
	return ok
}

// segAnyLocked resolves the live geometry of an id visible in this shard,
// newest layer first.
func (s *mshard) segAnyLocked(bv *baseView, id uint32) geom.Segment {
	if seg, ok := s.overSeg[id]; ok {
		return seg
	}
	if f := s.frozen; f != nil {
		if seg, ok := f.overSeg[id]; ok {
			return seg
		}
	}
	if seg, ok := bv.over[id]; ok {
		return seg
	}
	if int(id) < s.pl.ds.Len() {
		return s.pl.ds.Seg(id)
	}
	return geom.Segment{}
}

// boundsNow returns the shard's current extent: base bounds plus any
// overlay geometry.
func (s *mshard) boundsNow() geom.Rect {
	if s.pend.Load() == 0 {
		return s.base.Load().bounds
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := s.base.Load().bounds
	if f := s.frozen; f != nil {
		for _, seg := range f.overSeg {
			out = out.Union(seg.MBR())
		}
	}
	for _, seg := range s.overSeg {
		out = out.Union(seg.MBR())
	}
	return out
}

// ---- pool-level write application ----

func checkWriteSeg(seg geom.Segment) error {
	for _, v := range [4]float64{seg.A.X, seg.A.Y, seg.B.X, seg.B.Y} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("mutable: non-finite segment coordinate")
		}
	}
	return nil
}

// ApplyInsert upserts id at seg. It returns the owning shard's base epoch,
// whether a previous version of id was visible, and whether this pool owns
// the object's position (a pool that does not own it instead drops any
// stale local copy and acks owned=false, which is exactly what a replica
// must do when an object moves off its ranges).
func (p *Pool) ApplyInsert(id uint32, seg geom.Segment) (epoch uint64, existed, owned bool, err error) {
	epoch, existed, owned, err = p.applyUpsert(id, seg)
	if err == nil {
		p.m.inserts.Inc()
	}
	return epoch, existed, owned, err
}

// ApplyMove is ApplyInsert under update semantics: the moving-object
// workload's hot write. Kept distinct so the serving tier can meter moves
// separately from first-time inserts.
func (p *Pool) ApplyMove(id uint32, seg geom.Segment) (epoch uint64, existed, owned bool, err error) {
	epoch, existed, owned, err = p.applyUpsert(id, seg)
	if err == nil {
		p.m.moves.Inc()
	}
	return epoch, existed, owned, err
}

func (p *Pool) applyUpsert(id uint32, seg geom.Segment) (uint64, bool, bool, error) {
	if err := checkWriteSeg(seg); err != nil {
		return 0, false, false, err
	}
	key := shard.WriteKey(p.q, seg.MBR())

	// Ownership resolves under omu: a topology swap also happens under
	// omu, so the shard chosen here is still the owner when its lock is
	// taken below — a writer can never land an object in a retired shard.
	p.omu.Lock()
	t := p.topo.Load()
	li, ownedHere := t.local[shard.RangeForKey(t.cuts, key)]
	old, hadOld := p.ownerOf[id]

	if !ownedHere {
		// The object's new position belongs to some other backend's
		// ranges: all this pool must do is forget its stale copy.
		if !hadOld {
			p.omu.Unlock()
			p.m.notOwned.Inc()
			return 0, false, false, nil
		}
		delete(p.ownerOf, id)
		old.count.Add(-1)
		old.mu.Lock()
		p.omu.Unlock()
		existed := old.removeLocked(id)
		epoch := old.epoch.Load()
		old.mu.Unlock()
		if existed {
			// The id may re-enter through another shard later; signal the
			// departure after it is visible and before this write acks, so
			// a scan spanning the departure and a subsequent arrival sees
			// the transfer counter move (see Pool.xfers).
			p.noteXfer(id)
		}
		p.m.notOwned.Inc()
		return epoch, existed, false, nil
	}

	target := t.shards[li]
	p.ownerOf[id] = target
	if !hadOld {
		target.count.Add(1)
	} else if old != target {
		old.count.Add(-1)
		target.count.Add(1)
	}

	if hadOld && old != target {
		// Cross-shard move: drop the old copy and install the new one
		// under both locks, acquired in ascending li order while omu
		// still serializes us against every other write of any id.
		a, b := old, target
		if a.li > b.li {
			a, b = b, a
		}
		a.mu.Lock()
		b.mu.Lock()
		p.omu.Unlock()
		existed := old.removeLocked(id)
		if target.upsertLocked(id, seg) {
			existed = true
		}
		epoch := target.epoch.Load()
		// Unlock order is deliberate: the removal becomes visible first,
		// the transfer counter moves, and only then does the new copy
		// become visible — so any scan that can observe both copies is
		// guaranteed to observe the counter change and dedup (Pool.xfers).
		old.mu.Unlock()
		p.noteXfer(id)
		target.mu.Unlock()
		return epoch, existed, true, nil
	}

	target.mu.Lock()
	p.omu.Unlock()
	existed := target.upsertLocked(id, seg)
	epoch := target.epoch.Load()
	target.mu.Unlock()
	return epoch, existed, true, nil
}

// ApplyDelete removes id wherever it lives. The object's position is not on
// the wire, so every replica applies deletes locally; owned reports whether
// this pool actually held the object. Idempotent: deleting an unknown id
// succeeds with existed=false.
func (p *Pool) ApplyDelete(id uint32) (epoch uint64, existed, owned bool, err error) {
	p.omu.Lock()
	sh, ok := p.ownerOf[id]
	if !ok {
		p.omu.Unlock()
		p.m.deletes.Inc()
		return 0, false, false, nil
	}
	delete(p.ownerOf, id)
	sh.count.Add(-1)
	sh.mu.Lock()
	p.omu.Unlock()
	existed = sh.removeLocked(id)
	epoch = sh.epoch.Load()
	sh.mu.Unlock()
	if existed {
		// A later insert may land the same id in a different shard; bump
		// after the removal is visible and before this delete acks, so a
		// scan spanning both events sees the counter move (Pool.xfers).
		p.noteXfer(id)
	}
	p.m.deletes.Inc()
	return epoch, existed, true, nil
}

// noteXfer publishes one cross-shard transfer: bump the counter, then tag
// the ring slot with the counter value and the id. The order (counter
// first) means a reader can briefly observe the counter ahead of the slot
// write — it detects that by the tag mismatch and falls back to the full
// sort-dedup, so the read fast path never waits on a writer.
func (p *Pool) noteXfer(id uint32) {
	x := p.xfers.Add(1)
	p.xferRing[(x-1)%xferRingSize].Store(x<<32 | uint64(id))
}

// ---- metrics ----

type poolMetrics struct {
	hub         *obs.Hub
	inserts     *obs.Counter
	deletes     *obs.Counter
	moves       *obs.Counter
	notOwned    *obs.Counter
	compactions *obs.Counter
	compactErrs *obs.Counter
	splits      *obs.Counter
	merges      *obs.Counter

	// Per-shard gauges are indexed by topology position and extended on
	// demand: a split grows the shard count at runtime. gmu guards the
	// slice growth (the compactor and the repartitioner both publish).
	gmu    sync.Mutex
	epochG []*obs.Gauge
	pendG  []*obs.Gauge
	staleG []*obs.Gauge
	heatG  []*obs.Gauge
}

func newPoolMetrics(h *obs.Hub) *poolMetrics {
	m := &poolMetrics{}
	if h == nil || h.Reg == nil {
		return m // nil handles are no-ops
	}
	m.hub = h
	m.inserts = h.Reg.Counter("mutable_inserts_total")
	m.deletes = h.Reg.Counter("mutable_deletes_total")
	m.moves = h.Reg.Counter("mutable_moves_total")
	m.notOwned = h.Reg.Counter("mutable_not_owned_total")
	m.compactions = h.Reg.Counter("mutable_compactions_total")
	m.compactErrs = h.Reg.Counter("mutable_compact_errors_total")
	m.splits = h.Reg.Counter("mutable_splits_total")
	m.merges = h.Reg.Counter("mutable_merges_total")
	return m
}

// shardGauges returns every registered per-shard gauge row, extending the
// registration to cover positions [0, n). The returned slices may be longer
// than n (a merge shrank the topology); the publisher zeroes the tail so a
// dead position does not freeze its last value in the snapshot.
func (m *poolMetrics) shardGauges(n int) (epochG, pendG, staleG, heatG []*obs.Gauge) {
	if m.hub == nil {
		return nil, nil, nil, nil
	}
	m.gmu.Lock()
	defer m.gmu.Unlock()
	for i := len(m.epochG); i < n; i++ {
		lbl := fmt.Sprintf("%d", i)
		m.epochG = append(m.epochG, m.hub.Reg.Gauge(obs.Name("mutable_epoch", "shard", lbl)))
		m.pendG = append(m.pendG, m.hub.Reg.Gauge(obs.Name("mutable_pending", "shard", lbl)))
		m.staleG = append(m.staleG, m.hub.Reg.Gauge(obs.Name("mutable_staleness_seconds", "shard", lbl)))
		m.heatG = append(m.heatG, m.hub.Reg.Gauge(obs.Name("mutable_heat", "shard", lbl)))
	}
	return m.epochG, m.pendG, m.staleG, m.heatG
}
