// Package mutable makes the spatial serving tier updatable: each shard pairs
// the zero-alloc packed R-tree base the whole repo is built around with a
// small dynamic delta tree (internal/dynrtree) and a tombstone set, so live
// inserts, deletes, and moves apply in microseconds without disturbing the
// packed structure. Reads overlay base+delta — an id's newest version wins,
// tombstones win over everything — and a background compactor periodically
// rebuilds the packed base from the merged state and atomically epoch-swaps
// it in, returning the shard to the pure packed fast path.
//
// The paper's energy argument is about keeping per-query work small and
// predictable on the mobile side; the delta/epoch-swap design extends that
// to a mutable world: the warm read path stays allocation-free (a shard with
// no pending updates is byte-for-byte the packed-tree path; a shard with an
// overlay adds only map lookups and a bounded delta-tree walk), and all
// rebuild cost is batched into the compactor where it amortizes across
// CompactThreshold updates.
//
// The shard layout itself is also mutable: the pool's cut table, shard set,
// and ownership map live in one immutable topology value behind an atomic
// pointer, and a background repartitioner (see repartition.go) splits hot
// shards at their median Hilbert key and merges cold neighbors by building
// replacement shards off to the side and swapping a new topology in — the
// same freeze/rebuild/swap discipline compaction uses, so readers never
// block on a repartition either.
//
// Consistency model: a Pool is linearizable per object id (writes to one id
// are serialized by the pool's owner table; a read observes every write
// acknowledged before the read began, because writers publish under the
// shard write lock that readers with a non-empty overlay take in read mode,
// and the empty-overlay fast path is only reachable after a compaction that
// folded every acknowledged write). A topology swap preserves this: the
// retired shards keep their contents (the repartitioner copies, never moves,
// the live overlay into the replacement shards), so a reader still holding
// the old topology keeps observing every acknowledged write until it drops
// the snapshot. Multi-shard scans are not snapshot-isolated — a write
// concurrent with the scan may or may not be observed — but each answer
// contains an id at most once: writers signal cross-shard transfers through
// a pool-wide counter and a scan that raced one dedups its answer before
// returning it (read.go). Epochs count compactions: an update ack carries the owning
// shard's current base epoch E, meaning the write lives in the overlay above
// base E and will be folded into base E+1 or later — the distance between a
// replica's acked epoch and its current epoch is the staleness the stats
// surface reports.
package mutable

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/heat"
	"mobispatial/internal/hilbert"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
	"mobispatial/internal/shard"
)

// Config configures an updatable pool.
type Config struct {
	// Dataset supplies the canonical geometry of ids below Dataset.Len().
	// Required.
	Dataset *dataset.Dataset

	// Ranges are the Hilbert ranges this pool holds, one updatable shard
	// per range (a monolithic server holds all of them; a cluster backend
	// holds its replica subset). Each range's Items seed the shard's
	// packed base. Required and non-empty.
	Ranges []shard.Range

	// Cuts are the Lo keys of every range in the *cluster-wide*
	// partitioning, ascending — the gap-free write-ownership table
	// (shard.RangeForKey). For a monolithic pool this is just the Lo of
	// every local range. Required and non-empty.
	Cuts []uint64

	// GlobalIndex maps Ranges[i] to its cluster-wide range index (the
	// index into Cuts-space that shard.RangeForKey returns). Nil means
	// identity: Ranges[i] is global range i, the monolithic case.
	GlobalIndex []int

	// Bounds is the partitioning extent the cluster quantized over —
	// shard.BoundsOf of the full item set. Writes are keyed with
	// shard.WriteKey under a quantizer over these bounds, so every
	// process must use the same value. Required and non-empty.
	Bounds geom.Rect

	// Order is the Hilbert order of the partitioning quantizer; 0 means
	// the default.
	Order uint

	// Workers sizes the admission width the serving layer derives from
	// the executor; defaults to GOMAXPROCS.
	Workers int

	// NodeBytes sizes packed base nodes (rtree.Config.NodeBytes);
	// 0 means the rtree default.
	NodeBytes int

	// DeltaNodeBytes sizes delta-tree nodes (dynrtree.Config.NodeBytes);
	// 0 means the dynrtree default.
	DeltaNodeBytes int

	// CompactThreshold is the overlay size (pending inserts+moves+
	// tombstones) at which the compactor rebuilds a shard's base.
	// Defaults to 256.
	CompactThreshold int

	// CompactInterval is the compactor's poll period. 0 means 100ms;
	// negative disables the background compactor (tests drive
	// ForceCompact directly).
	CompactInterval time.Duration

	// CompactMaxAge bounds staleness: a shard whose overlay is non-empty
	// and older than this is compacted even below CompactThreshold. A
	// hot working set that keeps re-writing the same few objects never
	// grows its overlay past the object count, so a size trigger alone
	// would let those writes age in the overlay forever. Defaults to 1s;
	// negative disables the age trigger.
	CompactMaxAge time.Duration

	// Adaptive configures workload-adaptive repartitioning (split hot
	// shards, merge cold neighbors). See AdaptiveConfig; the zero value
	// leaves the topology static.
	Adaptive AdaptiveConfig

	// Obs receives mutable_* metrics; nil disables them.
	Obs *obs.Hub
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 256
	}
	if c.CompactInterval == 0 {
		c.CompactInterval = 100 * time.Millisecond
	}
	if c.CompactMaxAge == 0 {
		c.CompactMaxAge = time.Second
	}
	c.Adaptive.fill()
}

// versGenShift positions the topology generation in the high bits of every
// reported shard version. Two different topologies may reuse a shard index
// for different shards, and two different shards' raw write counters can
// coincide — the generation prefix makes every version value from one
// topology incomparable with every value from another, so the result cache's
// (mask, version-vector) views can never falsely match across a repartition.
// 48 bits leave room for ~2.8e14 writes per shard before the counter would
// bleed into the generation, which a process will not live to see.
const versGenShift = 48

// topology is one immutable generation of the pool's shard layout: the
// cluster-wide cut table, the global-range → local-shard mapping, the shard
// set, and the per-shard heat tracker. Readers load it once per operation
// through the pool's atomic pointer; the repartitioner publishes a fresh
// value and never mutates a published one.
type topology struct {
	// gen counts repartitions; it prefixes every reported version.
	gen uint64
	// cuts are the cluster-wide Lo keys, ascending (shard.RangeForKey).
	cuts []uint64
	// local maps a cluster-wide range index to a shards index.
	local map[int]int
	// shards are the live shards, in local index order.
	shards []*mshard
	// heat tracks per-shard EWMA query rates; sized to shards.
	heat *heat.Tracker
	// ownsAll reports the pool owns every cluster range with an identity
	// mapping — the precondition for repartitioning (a replica holding a
	// subset cannot re-cut the cluster unilaterally).
	ownsAll bool
}

// rangeHi returns global range g's inclusive Hi key under this cut table.
func (t *topology) rangeHi(g int) uint64 {
	if g+1 < len(t.cuts) {
		return t.cuts[g+1] - 1
	}
	return math.MaxUint64
}

// Pool is an updatable sharded spatial index. It implements the serving
// tier's executor surface (range/point/NN queries), its Updatable surface
// (ApplyInsert/ApplyDelete/ApplyMove), and SegOf for data-mode responses
// over ids the base dataset has never heard of.
type Pool struct {
	cfg Config
	ds  *dataset.Dataset
	q   *hilbert.Quantizer

	topo atomic.Pointer[topology]

	// liSeq hands out unique lock-ordering ids for new shards (mshard.li).
	liSeq atomic.Int64

	// omu guards ownerOf and serializes the ownership decision of every
	// write (the shard locks a write needs are acquired, in ascending
	// li order, before omu is released — so shard contents can never
	// disagree with the owner table). Topology swaps also happen under
	// omu, so a writer always resolves ownership against the topology it
	// will still be current when the shard locks are taken.
	omu     sync.Mutex
	ownerOf map[uint32]*mshard // live object id -> owning shard

	nnPool sync.Pool // *nnState

	m *poolMetrics

	splits, merges atomic.Uint64

	// xfers counts cross-shard transfers: any write that makes an id's
	// visible copy leave one shard while the id lands in (or is deleted
	// ahead of a re-insert into) another. Writers bump it after the
	// removal is visible and before the insert is — so a multi-shard scan
	// that observes the counter unchanged across its walk is guaranteed
	// not to contain the same id twice, and a scan that raced a transfer
	// dedups its answer in place (see read.go). Same-shard updates, the
	// moving-object hot path, never touch it.
	xfers atomic.Uint64

	// xferRing records WHICH ids transferred. Slot i%len holds
	// (i+1)<<32 | id for transfer i (the tag is the counter value the
	// bump published, so a reader can tell a slot that lags the counter
	// or has been lapped from the entry it wants). A scan that raced a
	// few transfers scrubs just those ids from its answer instead of
	// sort-deduping the whole thing; any tag mismatch or burst larger
	// than the ring falls back to the full sort (see noteXfer/read.go).
	xferRing [xferRingSize]atomic.Uint64

	stopc     chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds an updatable pool over cfg.Ranges. The range Items slices seed
// the packed bases (they are copied; the caller's slices are not retained).
func New(cfg Config) (*Pool, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("mutable: nil dataset")
	}
	if len(cfg.Ranges) == 0 {
		return nil, fmt.Errorf("mutable: no ranges")
	}
	if len(cfg.Cuts) == 0 {
		return nil, fmt.Errorf("mutable: no cuts")
	}
	for i := 1; i < len(cfg.Cuts); i++ {
		if cfg.Cuts[i] < cfg.Cuts[i-1] {
			return nil, fmt.Errorf("mutable: cuts not ascending at %d", i)
		}
	}
	if cfg.Bounds.IsEmpty() {
		return nil, fmt.Errorf("mutable: empty partition bounds")
	}
	cfg.fill()

	p := &Pool{
		cfg:     cfg,
		ds:      cfg.Dataset,
		q:       shard.QuantizerFor(cfg.Bounds, cfg.Order),
		ownerOf: make(map[uint32]*mshard),
		stopc:   make(chan struct{}),
	}
	p.nnPool.New = func() any { return newNNState(p) }
	p.m = newPoolMetrics(cfg.Obs)

	t := &topology{
		cuts:  cfg.Cuts,
		local: make(map[int]int, len(cfg.Ranges)),
	}
	for i, r := range cfg.Ranges {
		g := i
		if cfg.GlobalIndex != nil {
			if i >= len(cfg.GlobalIndex) {
				return nil, fmt.Errorf("mutable: GlobalIndex shorter than Ranges")
			}
			g = cfg.GlobalIndex[i]
		}
		if g < 0 || g >= len(cfg.Cuts) {
			return nil, fmt.Errorf("mutable: range %d has global index %d outside cuts", i, g)
		}
		if _, dup := t.local[g]; dup {
			return nil, fmt.Errorf("mutable: global range %d held twice", g)
		}
		t.local[g] = i
		s, err := newMShard(p, int(p.liSeq.Add(1)-1), r.Items)
		if err != nil {
			return nil, err
		}
		t.shards = append(t.shards, s)
		for _, it := range r.Items {
			p.ownerOf[it.ID] = s
		}
		s.count.Store(int64(len(r.Items)))
	}
	t.heat = heat.New(len(t.shards), cfg.Adaptive.HalfLifeSeconds)
	t.ownsAll = topologyOwnsAll(t)
	if cfg.Adaptive.Enabled && !t.ownsAll {
		return nil, fmt.Errorf("mutable: adaptive repartitioning requires a pool owning every cluster range (got %d of %d)",
			len(t.shards), len(t.cuts))
	}
	p.topo.Store(t)

	if cfg.CompactInterval > 0 {
		p.wg.Add(1)
		go p.compactLoop()
	}
	if cfg.Adaptive.Enabled && cfg.Adaptive.Interval > 0 {
		p.wg.Add(1)
		go p.repartitionLoop()
	}
	return p, nil
}

// topologyOwnsAll reports whether t holds every cluster range under the
// identity mapping — the shape repartitioning preserves and requires.
func topologyOwnsAll(t *topology) bool {
	if len(t.shards) != len(t.cuts) {
		return false
	}
	for g := range t.cuts {
		if li, ok := t.local[g]; !ok || li != g {
			return false
		}
	}
	return true
}

// NewFromDataset builds a monolithic updatable pool: the dataset is
// Hilbert-partitioned into nShards local ranges, each owning its own key
// run, and every write is owned locally.
func NewFromDataset(ds *dataset.Dataset, nShards int, cfg Config) (*Pool, error) {
	if ds == nil {
		return nil, fmt.Errorf("mutable: nil dataset")
	}
	items := ds.Items()
	ranges, bounds := shard.PartitionHilbert(items, nShards, cfg.Order)
	if len(ranges) == 0 {
		return nil, fmt.Errorf("mutable: dataset partitioned into zero ranges")
	}
	cuts := make([]uint64, len(ranges))
	for i, r := range ranges {
		cuts[i] = r.Lo
	}
	cfg.Dataset = ds
	cfg.Ranges = ranges
	cfg.Cuts = cuts
	cfg.GlobalIndex = nil
	cfg.Bounds = bounds
	return New(cfg)
}

// Close stops the background compactor and repartitioner. Idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.stopc)
		p.wg.Wait()
	})
}

// Workers reports the configured admission width.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Dataset returns the base dataset (canonical geometry of original ids).
func (p *Pool) Dataset() *dataset.Dataset { return p.ds }

// NumShards returns the current local shard count.
func (p *Pool) NumShards() int { return len(p.topo.Load().shards) }

// Len returns the number of live objects the pool currently holds.
func (p *Pool) Len() int {
	p.omu.Lock()
	n := len(p.ownerOf)
	p.omu.Unlock()
	return n
}

// Bounds returns the union of the shards' base bounds and any overlay
// geometry — the extent a registration summary should advertise.
func (p *Pool) Bounds() geom.Rect {
	out := geom.EmptyRect()
	for _, s := range p.topo.Load().shards {
		out = out.Union(s.boundsNow())
	}
	return out
}

// Epoch returns shard i's base epoch (number of compactions folded in), or 0
// for an index outside the current topology (a caller may race a swap).
func (p *Pool) Epoch(i int) uint64 {
	if t := p.topo.Load(); i >= 0 && i < len(t.shards) {
		return t.shards[i].epoch.Load()
	}
	return 0
}

// Pending returns shard i's overlay size (unfolded updates + tombstones), or
// 0 for an index outside the current topology.
func (p *Pool) Pending(i int) int {
	if t := p.topo.Load(); i >= 0 && i < len(t.shards) {
		return int(t.shards[i].pend.Load())
	}
	return 0
}

// Version returns shard i's monotone write-version counter — the result
// cache's validity signal (qcache.Source). It advances under the shard
// write lock, before the write is acknowledged, on every overlay mutation
// and on every compaction epoch swap. The topology generation occupies the
// high bits (versGenShift), so a version observed under one topology can
// never equal a version observed under another — a repartition invalidates
// every cached view wholesale, by construction rather than by protocol.
func (p *Pool) Version(i int) uint64 {
	t := p.topo.Load()
	if i < 0 || i >= len(t.shards) {
		return t.gen << versGenShift
	}
	return t.gen<<versGenShift | t.shards[i].version.Load()
}

// ShardBounds returns shard i's current extent (qcache.Source): base bounds
// plus any overlay geometry, empty for a shard holding nothing or an index
// outside the current topology.
func (p *Pool) ShardBounds(i int) geom.Rect {
	if t := p.topo.Load(); i >= 0 && i < len(t.shards) {
		return t.shards[i].boundsNow()
	}
	return geom.EmptyRect()
}

// ShardItems returns the number of live objects shard i currently owns —
// the per-range item count a live registration summary reports.
func (p *Pool) ShardItems(i int) int {
	if t := p.topo.Load(); i >= 0 && i < len(t.shards) {
		return int(t.shards[i].count.Load())
	}
	return 0
}

// ShardHeat returns shard i's EWMA query rate in queries per second, folding
// any accumulated raw counts first.
func (p *Pool) ShardHeat(i int) float64 {
	t := p.topo.Load()
	t.heat.Fold()
	return t.heat.Rate(i)
}

// Gen returns the topology generation (the number of repartitions applied).
func (p *Pool) Gen() uint64 { return p.topo.Load().gen }

// Splits returns the number of shard splits applied.
func (p *Pool) Splits() uint64 { return p.splits.Load() }

// Merges returns the number of shard merges applied.
func (p *Pool) Merges() uint64 { return p.merges.Load() }

// LocalShard maps a cluster-wide range index to this pool's local shard
// index, or -1 when the pool does not hold that range. The inverse of
// Config.GlobalIndex, for callers (the serving layer's summary builder)
// that enumerate ranges in cluster terms.
func (p *Pool) LocalShard(global int) int {
	if li, ok := p.topo.Load().local[global]; ok {
		return li
	}
	return -1
}

// LiveRangesEnabled reports whether this pool's range layout can change at
// runtime (serve.LiveRangeSet): a server fronting an adaptive pool must
// rebuild its summary's range table per request instead of patching a
// fixed-length registration template.
func (p *Pool) LiveRangesEnabled() bool { return p.cfg.Adaptive.Enabled }

// SummaryRanges appends the pool's current per-range summary rows to dst and
// returns the cluster-wide range count, all from one topology snapshot. Each
// row carries the range's cut-table key span, live item count, generation-
// prefixed version, current MBR, and EWMA heat.
func (p *Pool) SummaryRanges(dst []proto.RangeInfo) ([]proto.RangeInfo, int) {
	t := p.topo.Load()
	t.heat.Fold()
	for g := range t.cuts {
		li, ok := t.local[g]
		if !ok || li >= len(t.shards) {
			continue
		}
		s := t.shards[li]
		n := s.count.Load()
		if n < 0 {
			n = 0
		}
		items := uint32(math.MaxUint32)
		if n < math.MaxUint32 {
			items = uint32(n)
		}
		dst = append(dst, proto.RangeInfo{
			Index:   uint32(g),
			Items:   items,
			Lo:      t.cuts[g],
			Hi:      t.rangeHi(g),
			Version: t.gen<<versGenShift | s.version.Load(),
			MBR:     s.boundsNow(),
			Heat:    t.heat.Rate(li),
		})
	}
	return dst, len(t.cuts)
}

// SegOf returns the live geometry of id, falling back to the base dataset
// for original ids the pool no longer tracks and to the zero Segment for
// unknown ids. This is the serving tier's data-mode resolver: inserted ids
// sit at or above Dataset.Len(), where Dataset.Seg would be out of range.
func (p *Pool) SegOf(id uint32) geom.Segment {
	p.omu.Lock()
	s, ok := p.ownerOf[id]
	p.omu.Unlock()
	if !ok {
		if int(id) < p.ds.Len() {
			return p.ds.Seg(id)
		}
		return geom.Segment{}
	}
	if s.pend.Load() == 0 {
		bv := s.base.Load()
		if seg, ok := bv.over[id]; ok {
			return seg
		}
		if int(id) < p.ds.Len() {
			return p.ds.Seg(id)
		}
		return geom.Segment{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.segAnyLocked(s.base.Load(), id)
}
