// Package mutable makes the spatial serving tier updatable: each shard pairs
// the zero-alloc packed R-tree base the whole repo is built around with a
// small dynamic delta tree (internal/dynrtree) and a tombstone set, so live
// inserts, deletes, and moves apply in microseconds without disturbing the
// packed structure. Reads overlay base+delta — an id's newest version wins,
// tombstones win over everything — and a background compactor periodically
// rebuilds the packed base from the merged state and atomically epoch-swaps
// it in, returning the shard to the pure packed fast path.
//
// The paper's energy argument is about keeping per-query work small and
// predictable on the mobile side; the delta/epoch-swap design extends that
// to a mutable world: the warm read path stays allocation-free (a shard with
// no pending updates is byte-for-byte the packed-tree path; a shard with an
// overlay adds only map lookups and a bounded delta-tree walk), and all
// rebuild cost is batched into the compactor where it amortizes across
// CompactThreshold updates.
//
// Consistency model: a Pool is linearizable per object id (writes to one id
// are serialized by the pool's owner table; a read observes every write
// acknowledged before the read began, because writers publish under the
// shard write lock that readers with a non-empty overlay take in read mode,
// and the empty-overlay fast path is only reachable after a compaction that
// folded every acknowledged write). Epochs count compactions: an update ack
// carries the owning shard's current base epoch E, meaning the write lives
// in the overlay above base E and will be folded into base E+1 or later —
// the distance between a replica's acked epoch and its current epoch is the
// staleness the stats surface reports.
package mutable

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/hilbert"
	"mobispatial/internal/obs"
	"mobispatial/internal/shard"
)

// Config configures an updatable pool.
type Config struct {
	// Dataset supplies the canonical geometry of ids below Dataset.Len().
	// Required.
	Dataset *dataset.Dataset

	// Ranges are the Hilbert ranges this pool holds, one updatable shard
	// per range (a monolithic server holds all of them; a cluster backend
	// holds its replica subset). Each range's Items seed the shard's
	// packed base. Required and non-empty.
	Ranges []shard.Range

	// Cuts are the Lo keys of every range in the *cluster-wide*
	// partitioning, ascending — the gap-free write-ownership table
	// (shard.RangeForKey). For a monolithic pool this is just the Lo of
	// every local range. Required and non-empty.
	Cuts []uint64

	// GlobalIndex maps Ranges[i] to its cluster-wide range index (the
	// index into Cuts-space that shard.RangeForKey returns). Nil means
	// identity: Ranges[i] is global range i, the monolithic case.
	GlobalIndex []int

	// Bounds is the partitioning extent the cluster quantized over —
	// shard.BoundsOf of the full item set. Writes are keyed with
	// shard.WriteKey under a quantizer over these bounds, so every
	// process must use the same value. Required and non-empty.
	Bounds geom.Rect

	// Order is the Hilbert order of the partitioning quantizer; 0 means
	// the default.
	Order uint

	// Workers sizes the admission width the serving layer derives from
	// the executor; defaults to GOMAXPROCS.
	Workers int

	// NodeBytes sizes packed base nodes (rtree.Config.NodeBytes);
	// 0 means the rtree default.
	NodeBytes int

	// DeltaNodeBytes sizes delta-tree nodes (dynrtree.Config.NodeBytes);
	// 0 means the dynrtree default.
	DeltaNodeBytes int

	// CompactThreshold is the overlay size (pending inserts+moves+
	// tombstones) at which the compactor rebuilds a shard's base.
	// Defaults to 256.
	CompactThreshold int

	// CompactInterval is the compactor's poll period. 0 means 100ms;
	// negative disables the background compactor (tests drive
	// ForceCompact directly).
	CompactInterval time.Duration

	// CompactMaxAge bounds staleness: a shard whose overlay is non-empty
	// and older than this is compacted even below CompactThreshold. A
	// hot working set that keeps re-writing the same few objects never
	// grows its overlay past the object count, so a size trigger alone
	// would let those writes age in the overlay forever. Defaults to 1s;
	// negative disables the age trigger.
	CompactMaxAge time.Duration

	// Obs receives mutable_* metrics; nil disables them.
	Obs *obs.Hub
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CompactThreshold <= 0 {
		c.CompactThreshold = 256
	}
	if c.CompactInterval == 0 {
		c.CompactInterval = 100 * time.Millisecond
	}
	if c.CompactMaxAge == 0 {
		c.CompactMaxAge = time.Second
	}
}

// Pool is an updatable sharded spatial index. It implements the serving
// tier's executor surface (range/point/NN queries), its Updatable surface
// (ApplyInsert/ApplyDelete/ApplyMove), and SegOf for data-mode responses
// over ids the base dataset has never heard of.
type Pool struct {
	cfg Config
	ds  *dataset.Dataset
	q   *hilbert.Quantizer

	cuts   []uint64
	local  map[int]int // cluster-wide range index -> shards index
	shards []*mshard

	// omu guards ownerOf and serializes the ownership decision of every
	// write (the shard locks a write needs are acquired, in ascending
	// shard order, before omu is released — so shard contents can never
	// disagree with the owner table).
	omu     sync.Mutex
	ownerOf map[uint32]int32 // live object id -> shards index
	// counts[i] is the number of live objects shard i owns — the per-range
	// item count live registration summaries report. Mutated only under
	// omu (at the same sites ownerOf changes), read lock-free.
	counts []atomic.Int64

	nnPool sync.Pool // *nnState

	m poolMetrics

	stopc     chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds an updatable pool over cfg.Ranges. The range Items slices seed
// the packed bases (they are copied; the caller's slices are not retained).
func New(cfg Config) (*Pool, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("mutable: nil dataset")
	}
	if len(cfg.Ranges) == 0 {
		return nil, fmt.Errorf("mutable: no ranges")
	}
	if len(cfg.Cuts) == 0 {
		return nil, fmt.Errorf("mutable: no cuts")
	}
	for i := 1; i < len(cfg.Cuts); i++ {
		if cfg.Cuts[i] < cfg.Cuts[i-1] {
			return nil, fmt.Errorf("mutable: cuts not ascending at %d", i)
		}
	}
	if cfg.Bounds.IsEmpty() {
		return nil, fmt.Errorf("mutable: empty partition bounds")
	}
	cfg.fill()

	p := &Pool{
		cfg:     cfg,
		ds:      cfg.Dataset,
		q:       shard.QuantizerFor(cfg.Bounds, cfg.Order),
		cuts:    cfg.Cuts,
		local:   make(map[int]int, len(cfg.Ranges)),
		ownerOf: make(map[uint32]int32),
		stopc:   make(chan struct{}),
	}
	p.nnPool.New = func() any { return newNNState(p) }
	p.m = newPoolMetrics(cfg.Obs, len(cfg.Ranges))

	for i, r := range cfg.Ranges {
		g := i
		if cfg.GlobalIndex != nil {
			if i >= len(cfg.GlobalIndex) {
				return nil, fmt.Errorf("mutable: GlobalIndex shorter than Ranges")
			}
			g = cfg.GlobalIndex[i]
		}
		if g < 0 || g >= len(cfg.Cuts) {
			return nil, fmt.Errorf("mutable: range %d has global index %d outside cuts", i, g)
		}
		if _, dup := p.local[g]; dup {
			return nil, fmt.Errorf("mutable: global range %d held twice", g)
		}
		p.local[g] = i
		s, err := newMShard(p, i, r.Items)
		if err != nil {
			return nil, err
		}
		p.shards = append(p.shards, s)
		for _, it := range r.Items {
			p.ownerOf[it.ID] = int32(i)
		}
	}
	p.counts = make([]atomic.Int64, len(p.shards))
	for _, li := range p.ownerOf {
		p.counts[li].Add(1)
	}

	if cfg.CompactInterval > 0 {
		p.wg.Add(1)
		go p.compactLoop()
	}
	return p, nil
}

// NewFromDataset builds a monolithic updatable pool: the dataset is
// Hilbert-partitioned into nShards local ranges, each owning its own key
// run, and every write is owned locally.
func NewFromDataset(ds *dataset.Dataset, nShards int, cfg Config) (*Pool, error) {
	if ds == nil {
		return nil, fmt.Errorf("mutable: nil dataset")
	}
	items := ds.Items()
	ranges, bounds := shard.PartitionHilbert(items, nShards, cfg.Order)
	if len(ranges) == 0 {
		return nil, fmt.Errorf("mutable: dataset partitioned into zero ranges")
	}
	cuts := make([]uint64, len(ranges))
	for i, r := range ranges {
		cuts[i] = r.Lo
	}
	cfg.Dataset = ds
	cfg.Ranges = ranges
	cfg.Cuts = cuts
	cfg.GlobalIndex = nil
	cfg.Bounds = bounds
	return New(cfg)
}

// Close stops the background compactor. Idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.stopc)
		p.wg.Wait()
	})
}

// Workers reports the configured admission width.
func (p *Pool) Workers() int { return p.cfg.Workers }

// Dataset returns the base dataset (canonical geometry of original ids).
func (p *Pool) Dataset() *dataset.Dataset { return p.ds }

// NumShards returns the local shard count.
func (p *Pool) NumShards() int { return len(p.shards) }

// Len returns the number of live objects the pool currently holds.
func (p *Pool) Len() int {
	p.omu.Lock()
	n := len(p.ownerOf)
	p.omu.Unlock()
	return n
}

// Bounds returns the union of the shards' base bounds and any overlay
// geometry — the extent a registration summary should advertise.
func (p *Pool) Bounds() geom.Rect {
	out := geom.EmptyRect()
	for _, s := range p.shards {
		out = out.Union(s.boundsNow())
	}
	return out
}

// Epoch returns shard i's base epoch (number of compactions folded in).
func (p *Pool) Epoch(i int) uint64 { return p.shards[i].epoch.Load() }

// Pending returns shard i's overlay size (unfolded updates + tombstones).
func (p *Pool) Pending(i int) int { return int(p.shards[i].pend.Load()) }

// Version returns shard i's monotone write-version counter — the result
// cache's validity signal (qcache.Source). It advances under the shard
// write lock, before the write is acknowledged, on every overlay mutation
// and on every compaction epoch swap.
func (p *Pool) Version(i int) uint64 { return p.shards[i].version.Load() }

// ShardBounds returns shard i's current extent (qcache.Source): base bounds
// plus any overlay geometry, empty for a shard holding nothing.
func (p *Pool) ShardBounds(i int) geom.Rect { return p.shards[i].boundsNow() }

// ShardItems returns the number of live objects shard i currently owns —
// the per-range item count a live registration summary reports.
func (p *Pool) ShardItems(i int) int { return int(p.counts[i].Load()) }

// LocalShard maps a cluster-wide range index to this pool's local shard
// index, or -1 when the pool does not hold that range. The inverse of
// Config.GlobalIndex, for callers (the serving layer's summary builder)
// that enumerate ranges in cluster terms.
func (p *Pool) LocalShard(global int) int {
	if li, ok := p.local[global]; ok {
		return li
	}
	return -1
}

// SegOf returns the live geometry of id, falling back to the base dataset
// for original ids the pool no longer tracks and to the zero Segment for
// unknown ids. This is the serving tier's data-mode resolver: inserted ids
// sit at or above Dataset.Len(), where Dataset.Seg would be out of range.
func (p *Pool) SegOf(id uint32) geom.Segment {
	p.omu.Lock()
	li, ok := p.ownerOf[id]
	p.omu.Unlock()
	if !ok {
		if int(id) < p.ds.Len() {
			return p.ds.Seg(id)
		}
		return geom.Segment{}
	}
	s := p.shards[li]
	if s.pend.Load() == 0 {
		bv := s.base.Load()
		if seg, ok := bv.over[id]; ok {
			return seg
		}
		if int(id) < p.ds.Len() {
			return p.ds.Seg(id)
		}
		return geom.Segment{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.segAnyLocked(s.base.Load(), id)
}
