// Package experiments contains the benchmark harness that regenerates every
// table and figure of the paper's evaluation (§6). Each figure has a
// dedicated entry point returning a Figure value — the same rows/series the
// paper plots — and the sweep points fan out over a worker pool because
// every point is an independent deterministic simulation.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/energy"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

// Bandwidths are the swept effective wireless bandwidths in Mbps (§5.4).
var Bandwidths = []float64{2, 4, 6, 8, 11}

// Runs is the number of per-figure query runs; the paper sums 100 runs.
const Runs = 100

// Variant is one plotted scheme configuration.
type Variant struct {
	Label     string
	Scheme    core.Scheme
	Placement core.DataPlacement
}

// AdequateVariants returns the plotted scheme set for a query kind in the
// adequate-memory scenario, mirroring Figs. 4–6: NN has no filter/refine
// split; point queries show one data placement (the reply is tiny either
// way, §6.1.1); range queries show the data-present/absent variants.
func AdequateVariants(kind core.QueryKind) []Variant {
	switch kind {
	case core.NNQuery:
		return []Variant{
			{"fully-server", core.FullyServer, core.DataAtServerOnly},
		}
	case core.PointQuery:
		return []Variant{
			{"fully-server", core.FullyServer, core.DataAtServerOnly},
			{"filter-client-refine-server", core.FilterClientRefineServer, core.DataAtServerOnly},
			{"filter-server-refine-client", core.FilterServerRefineClient, core.DataAtClient},
		}
	default:
		return []Variant{
			{"fully-server/data-absent", core.FullyServer, core.DataAtServerOnly},
			{"fully-server/data-present", core.FullyServer, core.DataAtClient},
			{"filter-client-refine-server/data-absent", core.FilterClientRefineServer, core.DataAtServerOnly},
			{"filter-client-refine-server/data-present", core.FilterClientRefineServer, core.DataAtClient},
			{"filter-server-refine-client", core.FilterServerRefineClient, core.DataAtClient},
		}
	}
}

// Config parameterizes an adequate-memory figure reproduction.
type Config struct {
	// Dataset to query.
	DS *dataset.Dataset
	// Kind of query (point / range / NN).
	Kind core.QueryKind
	// SpeedRatio is MhzC/MhzS (the paper uses 1/8 as the base, 1/2 in
	// Fig. 8).
	SpeedRatio float64
	// DistanceM is the client–base-station range (1000 m base, 100 m in
	// Fig. 9).
	DistanceM float64
	// BandwidthsMbps to sweep; nil means the paper's set.
	BandwidthsMbps []float64
	// Runs per point; 0 means the paper's 100.
	Runs int
	// Seed for workload generation.
	Seed int64
	// Workers bounds the sweep-point fan-out; 0 means GOMAXPROCS.
	Workers int
	// Mutate, if non-nil, adjusts the simulation parameters of every point
	// (used by the ablation benches).
	Mutate func(*sim.Params)
}

func (c *Config) fill() {
	if c.SpeedRatio == 0 {
		c.SpeedRatio = 1.0 / 8
	}
	if c.DistanceM == 0 {
		c.DistanceM = 1000
	}
	if len(c.BandwidthsMbps) == 0 {
		c.BandwidthsMbps = Bandwidths
	}
	if c.Runs == 0 {
		c.Runs = Runs
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// CycleBreakdown is the cycles decomposition the figures plot.
type CycleBreakdown struct {
	Processor int64
	Tx        int64
	Rx        int64
	Wait      int64
}

// Total returns all client-clock cycles.
func (c CycleBreakdown) Total() int64 { return c.Processor + c.Tx + c.Rx + c.Wait }

// PointResult is one sweep point's outcome (sum over the runs).
type PointResult struct {
	BandwidthMbps float64
	Energy        energy.Breakdown
	Cycles        CycleBreakdown
	ServerCycles  int64
}

// Series is one scheme's curve across the bandwidth sweep.
type Series struct {
	Variant Variant
	Points  []PointResult
}

// Figure is a reproduced figure: the fully-client baseline (the horizontal
// line in the paper's plots) plus one series per scheme.
type Figure struct {
	ID    string
	Title string
	// Runs is the number of summed query runs behind every point.
	Runs     int
	Baseline PointResult
	Series   []Series
}

// queriesFor generates the figure's workload.
func queriesFor(ds *dataset.Dataset, kind core.QueryKind, n int, seed int64) []core.Query {
	qs := make([]core.Query, 0, n)
	switch kind {
	case core.PointQuery:
		for _, p := range dataset.PointQueries(ds, n, seed) {
			qs = append(qs, core.Point(p))
		}
	case core.NNQuery:
		for _, p := range dataset.NNQueries(ds, n, seed) {
			qs = append(qs, core.Nearest(p))
		}
	default:
		for _, w := range dataset.RangeQueries(ds, n, seed) {
			qs = append(qs, core.Range(w))
		}
	}
	return qs
}

// simParams builds the sweep point's simulation parameters.
func simParams(cfg *Config, bwMbps float64) sim.Params {
	p := sim.DefaultParams()
	p.BandwidthBps = bwMbps * 1e6
	p.DistanceM = cfg.DistanceM
	p.Client.ClockHz = p.Server.ClockHz * cfg.SpeedRatio
	if cfg.Mutate != nil {
		cfg.Mutate(&p)
	}
	return p
}

// runPoint executes all queries under one variant at one bandwidth and
// returns the summed result. The caches stay warm across the runs, as the
// paper's memory-resident setting implies.
func runPoint(cfg *Config, tree *rtree.Tree, queries []core.Query, v Variant, bwMbps float64) (PointResult, error) {
	sys, err := sim.New(simParams(cfg, bwMbps))
	if err != nil {
		return PointResult{}, err
	}
	eng := core.NewEngineWithTree(cfg.DS, tree, sys)
	for _, q := range queries {
		if _, err := eng.Run(q, v.Scheme, v.Placement); err != nil {
			return PointResult{}, fmt.Errorf("%s @%g Mbps: %w", v.Label, bwMbps, err)
		}
	}
	r := sys.Result()
	return PointResult{
		BandwidthMbps: bwMbps,
		Energy:        r.Energy,
		Cycles: CycleBreakdown{
			Processor: r.ProcessorCycles,
			Tx:        r.TxCycles,
			Rx:        r.RxCycles,
			Wait:      r.WaitCycles,
		},
		ServerCycles: r.ServerCycles,
	}, nil
}

// Adequate reproduces one adequate-memory figure (the Figs. 4–9 family).
func Adequate(cfg Config) (Figure, error) {
	cfg.fill()
	tree, err := rtree.Build(cfg.DS.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return Figure{}, err
	}
	queries := queriesFor(cfg.DS, cfg.Kind, cfg.Runs, cfg.Seed)
	variants := AdequateVariants(cfg.Kind)

	fig := Figure{
		ID:   fmt.Sprintf("%s-%s", cfg.DS.Name, cfg.Kind),
		Runs: cfg.Runs,
		Title: fmt.Sprintf("%s queries, %s dataset, C/S=%.3g, %gm",
			cfg.Kind, cfg.DS.Name, cfg.SpeedRatio, cfg.DistanceM),
		Series: make([]Series, len(variants)),
	}

	// Baseline: fully at the client (bandwidth-independent).
	base, err := runPoint(&cfg, tree, queries,
		Variant{"fully-client", core.FullyClient, core.DataAtClient}, cfg.BandwidthsMbps[0])
	if err != nil {
		return Figure{}, err
	}
	fig.Baseline = base

	type job struct{ vi, bi int }
	jobs := make([]job, 0, len(variants)*len(cfg.BandwidthsMbps))
	for vi := range variants {
		fig.Series[vi] = Series{
			Variant: variants[vi],
			Points:  make([]PointResult, len(cfg.BandwidthsMbps)),
		}
		for bi := range cfg.BandwidthsMbps {
			jobs = append(jobs, job{vi, bi})
		}
	}

	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for ji, j := range jobs {
		wg.Add(1)
		go func(ji int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pr, err := runPoint(&cfg, tree, queries, variants[j.vi], cfg.BandwidthsMbps[j.bi])
			if err != nil {
				errs[ji] = err
				return
			}
			fig.Series[j.vi].Points[j.bi] = pr
		}(ji, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Figure{}, err
		}
	}
	return fig, nil
}
