package experiments

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"mobispatial/internal/dataset"
	"mobispatial/internal/dynrtree"
	"mobispatial/internal/ops"
	"mobispatial/internal/pmrquad"
	"mobispatial/internal/rtree"
)

func TestCompareIndexes(t *testing.T) {
	results, err := CompareIndexes(IndexComparisonConfig{DS: nycDS(), Runs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 12 { // 4 structures × 3 query kinds
		t.Fatalf("got %d results", len(results))
	}
	byKey := map[string]IndexResult{}
	for _, r := range results {
		byKey[r.Index+"/"+r.Kind.String()] = r
		if r.EnergyJ <= 0 || r.Cycles <= 0 || r.IndexBytes <= 0 {
			t.Fatalf("degenerate result %+v", r)
		}
	}
	// The packed R-tree is the most compact structure — the reason the
	// memory-constrained study standardizes on it.
	packed := byKey["packed-rtree/range"].IndexBytes
	if byKey["insertion-rtree/range"].IndexBytes <= packed {
		t.Error("insertion-built R-tree not larger than packed")
	}
	if byKey["pmr-quadtree/range"].IndexBytes <= packed {
		t.Error("PMR quadtree not larger than packed (multi-storage duplication)")
	}
	// Bulk loading beats item-by-item insertion on query cycles (§3).
	if byKey["packed-rtree/range"].Cycles >= byKey["insertion-rtree/range"].Cycles {
		t.Error("packed R-tree range cycles not below insertion-built")
	}

	var buf bytes.Buffer
	if err := WriteIndexComparison(&buf, results, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pmr-quadtree") {
		t.Error("rendering incomplete")
	}
}

// TestAllIndexesAgreeOnAnswers: the three access methods produce identical
// filtering candidates (same MBR-intersection predicate) and thus identical
// refined answers under the engine.
func TestAllIndexesAgreeOnAnswers(t *testing.T) {
	ds := nycDS()
	packed, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := dynrtree.BuildByInsertion(dynItems(ds), dynrtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	quad, err := pmrquad.Build(ds.Segments, ds.Extent, pmrquad.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range dataset.RangeQueries(ds, 20, 77) {
		a := sortedU32(packed.Search(w, ops.Null{}))
		b := sortedU32(dyn.Search(w, ops.Null{}))
		c := sortedU32(quad.Search(w, ops.Null{}))
		if !equalU32s(a, b) || !equalU32s(a, c) {
			t.Fatalf("window %v: candidate sets differ (%d/%d/%d)", w, len(a), len(b), len(c))
		}
	}
}

func sortedU32(v []uint32) []uint32 {
	out := append([]uint32(nil), v...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalU32s(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
