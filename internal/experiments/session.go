package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

// Session experiment: a realistic mobile map-browsing session mixes the
// three query types, and no fixed scheme is right for all of them — the
// paper's central message. The experiment compares the fixed extremes with
// the adaptive §4.1-based policy of core.RunAdaptive.

// SessionConfig parameterizes the mixed-session experiment.
type SessionConfig struct {
	DS *dataset.Dataset
	// Queries is the session length (default 60).
	Queries int
	// BandwidthMbps of the link (default 11 — the regime where offloading
	// heavy queries pays).
	BandwidthMbps float64
	Seed          int64
}

func (c *SessionConfig) fill() {
	if c.Queries == 0 {
		c.Queries = 60
	}
	if c.BandwidthMbps == 0 {
		c.BandwidthMbps = 11
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// SessionResult is one strategy's session cost.
type SessionResult struct {
	Strategy string
	EnergyJ  float64
	Cycles   int64
	Seconds  float64
	// Offloaded counts the adaptive policy's server-bound queries (0 for
	// fixed strategies by construction of the field).
	Offloaded int64
}

// sessionQueries scripts a browsing session: pans/zooms (range, half of
// them heavyweight), street taps (point), nearest-road probes (NN).
func sessionQueries(ds *dataset.Dataset, n int, seed int64) []core.Query {
	rng := rand.New(rand.NewSource(seed))
	at := ds.Segments[rng.Intn(ds.Len())].Midpoint()
	clampWin := func(w geom.Rect) geom.Rect {
		return w.Intersection(ds.Extent)
	}
	var qs []core.Query
	for len(qs) < n {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			side := 2000 + rng.Float64()*8000
			qs = append(qs, core.Range(clampWin(geom.Rect{
				Min: geom.Point{X: at.X - side/2, Y: at.Y - side/2},
				Max: geom.Point{X: at.X + side/2, Y: at.Y + side/2},
			})))
			at.X += (rng.Float64() - 0.5) * 3000
			at.Y += (rng.Float64() - 0.5) * 3000
		case 4, 5, 6:
			s := ds.Segments[rng.Intn(ds.Len())]
			qs = append(qs, core.Point(s.A))
		default:
			qs = append(qs, core.Nearest(geom.Point{
				X: at.X + (rng.Float64()-0.5)*2000,
				Y: at.Y + (rng.Float64()-0.5)*2000,
			}))
		}
	}
	return qs
}

// Session runs the mixed workload under each strategy.
func Session(cfg SessionConfig) ([]SessionResult, error) {
	cfg.fill()
	tree, err := rtree.Build(cfg.DS.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	queries := sessionQueries(cfg.DS, cfg.Queries, cfg.Seed)

	newEng := func() (*core.Engine, *sim.System, error) {
		p := sim.DefaultParams()
		p.BandwidthBps = cfg.BandwidthMbps * 1e6
		sys, err := sim.New(p)
		if err != nil {
			return nil, nil, err
		}
		return core.NewEngineWithTree(cfg.DS, tree, sys), sys, nil
	}

	var out []SessionResult

	for _, fixed := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"all-local", core.FullyClient},
		{"all-server", core.FullyServer},
	} {
		eng, sys, err := newEng()
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			if _, err := eng.Run(q, fixed.scheme, core.DataAtClient); err != nil {
				return nil, err
			}
		}
		r := sys.Result()
		out = append(out, SessionResult{
			Strategy: fixed.name,
			EnergyJ:  r.Energy.Total(),
			Cycles:   r.TotalClientCycles(),
			Seconds:  r.ElapsedSeconds,
		})
	}

	eng, sys, err := newEng()
	if err != nil {
		return nil, err
	}
	var stats core.AdaptiveStats
	for _, q := range queries {
		if _, err := eng.RunAdaptive(q, &stats); err != nil {
			return nil, err
		}
	}
	r := sys.Result()
	out = append(out, SessionResult{
		Strategy:  "adaptive",
		EnergyJ:   r.Energy.Total(),
		Cycles:    r.TotalClientCycles(),
		Seconds:   r.ElapsedSeconds,
		Offloaded: stats.Offloaded,
	})
	return out, nil
}

// WriteSession renders the comparison.
func WriteSession(w io.Writer, results []SessionResult, cfg SessionConfig) error {
	cfg.fill()
	if _, err := fmt.Fprintf(w, "== Mixed session (%d queries, %g Mbps): fixed vs adaptive partitioning ==\n",
		cfg.Queries, cfg.BandwidthMbps); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s %14s %12s %10s\n", "strategy", "energy (J)", "cycles", "elapsed s", "offloaded")
	for _, r := range results {
		fmt.Fprintf(w, "%-12s %12.4f %14d %12.3f %10d\n",
			r.Strategy, r.EnergyJ, r.Cycles, r.Seconds, r.Offloaded)
	}
	return nil
}
