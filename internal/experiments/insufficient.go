package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
	"mobispatial/internal/stats"
)

// InsufficientConfig parameterizes the Fig. 10 reproduction: a sequence of
// one anchor range query plus y spatially proximate follow-ups is executed
// under the "fully at client" caching scheme and the "fully at server"
// scheme; the sweep varies y (the spatial proximity).
type InsufficientConfig struct {
	DS *dataset.Dataset
	// BudgetBytes is the client memory availability x (1 MB and 2 MB in the
	// paper).
	BudgetBytes int
	// Proximities are the swept y values; nil means 0..200 step 20.
	Proximities []int
	// RadiusFrac confines follow-up queries to a disc of this fraction of
	// the extent around the anchor.
	RadiusFrac float64
	// Trials averages each y over this many independent sequences.
	Trials int
	// BandwidthMbps of the link. The paper does not state Fig. 10's
	// bandwidth; the default 11 Mbps (contemporary 802.11b) reproduces the
	// published crossovers.
	BandwidthMbps float64
	// SpeedRatio is MhzC/MhzS.
	SpeedRatio float64
	// DistanceM to the base station.
	DistanceM float64
	Seed      int64
	Workers   int
}

func (c *InsufficientConfig) fill() {
	if len(c.Proximities) == 0 {
		c.Proximities = []int{0, 20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	}
	if c.RadiusFrac == 0 {
		c.RadiusFrac = 0.012
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.BandwidthMbps == 0 {
		c.BandwidthMbps = 11
	}
	if c.SpeedRatio == 0 {
		c.SpeedRatio = 1.0 / 8
	}
	if c.DistanceM == 0 {
		c.DistanceM = 1000
	}
	if c.Seed == 0 {
		c.Seed = 4242
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// InsufficientPoint is one swept proximity value: total energy and cycles of
// the whole sequence under each scheme (averaged over trials).
type InsufficientPoint struct {
	Proximity    int
	ClientEnergy float64 // "fully at client" (caching) scheme, Joules
	ServerEnergy float64
	ClientCycles float64
	ServerCycles float64
	// Refetches is the mean shipment count of the caching scheme.
	Refetches float64
	// ClientEnergyCI / ServerEnergyCI are 95% confidence half-widths over
	// the trials (0 for a single trial).
	ClientEnergyCI float64
	ServerEnergyCI float64
}

// InsufficientFigure is the Fig. 10 reproduction for one buffer size.
type InsufficientFigure struct {
	BudgetBytes int
	Points      []InsufficientPoint
	// EnergyCrossover is the smallest swept proximity at which the caching
	// scheme's energy drops below fully-at-server, or -1 if none.
	EnergyCrossover int
	// CyclesCrossover likewise for cycles (the paper finds none: the server
	// always wins performance).
	CyclesCrossover int
}

// Insufficient reproduces Fig. 10 for one buffer size.
func Insufficient(cfg InsufficientConfig) (InsufficientFigure, error) {
	cfg.fill()
	tree, err := rtree.Build(cfg.DS.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return InsufficientFigure{}, err
	}

	fig := InsufficientFigure{
		BudgetBytes: cfg.BudgetBytes,
		Points:      make([]InsufficientPoint, len(cfg.Proximities)),
	}

	params := func() sim.Params {
		p := sim.DefaultParams()
		p.BandwidthBps = cfg.BandwidthMbps * 1e6
		p.DistanceM = cfg.DistanceM
		p.Client.ClockHz = p.Server.ClockHz * cfg.SpeedRatio
		return p
	}

	errs := make([]error, len(cfg.Proximities))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for pi, y := range cfg.Proximities {
		wg.Add(1)
		go func(pi, y int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			pt := InsufficientPoint{Proximity: y}
			var clientJs, serverJs []float64
			for trial := 0; trial < cfg.Trials; trial++ {
				// The same trial seed across all y values makes each curve a
				// prefix-extension of one query sequence, so the sweep is
				// smooth instead of re-rolling the anchor at every point.
				seed := cfg.Seed + int64(trial)
				seq := dataset.ProximitySequence(cfg.DS, y, cfg.RadiusFrac, seed)

				sysC, err := sim.New(params())
				if err != nil {
					errs[pi] = err
					return
				}
				engC := core.NewEngineWithTree(cfg.DS, tree, sysC)
				cache := core.NewCache(cfg.BudgetBytes, cfg.DS.RecordBytes)

				sysS, err := sim.New(params())
				if err != nil {
					errs[pi] = err
					return
				}
				engS := core.NewEngineWithTree(cfg.DS, tree, sysS)

				for qi, w := range seq {
					q := core.Range(w)
					if _, _, err := engC.RunInsufficientClient(q, cache); err != nil {
						errs[pi] = fmt.Errorf("y=%d trial=%d query=%d: %w", y, trial, qi, err)
						return
					}
					engS.RunInsufficientServer(q)
				}
				rc, rs := sysC.Result(), sysS.Result()
				clientJs = append(clientJs, rc.Energy.Total())
				serverJs = append(serverJs, rs.Energy.Total())
				pt.ClientCycles += float64(rc.TotalClientCycles())
				pt.ServerCycles += float64(rs.TotalClientCycles())
				pt.Refetches += float64(cache.Refetches)
			}
			n := float64(cfg.Trials)
			cj := stats.Summarize(clientJs)
			sj := stats.Summarize(serverJs)
			pt.ClientEnergy, pt.ClientEnergyCI = cj.Mean, cj.CI95()
			pt.ServerEnergy, pt.ServerEnergyCI = sj.Mean, sj.CI95()
			pt.ClientCycles /= n
			pt.ServerCycles /= n
			pt.Refetches /= n
			fig.Points[pi] = pt
		}(pi, y)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return InsufficientFigure{}, err
		}
	}

	fig.EnergyCrossover = -1
	fig.CyclesCrossover = -1
	for _, pt := range fig.Points {
		if fig.EnergyCrossover < 0 && pt.ClientEnergy < pt.ServerEnergy {
			fig.EnergyCrossover = pt.Proximity
		}
		if fig.CyclesCrossover < 0 && pt.ClientCycles < pt.ServerCycles {
			fig.CyclesCrossover = pt.Proximity
		}
	}
	return fig, nil
}
