package experiments

import (
	"fmt"
	"io"

	"mobispatial/internal/broadcast"
	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

// ClockSweep reproduces the Table 3 client-clock sweep (MhzS/8, /4, /2, /1):
// for each ratio it reports the fully-client and fully-server(data-present)
// range-query costs, showing how the client/server speed gap governs the
// benefit of offloading (§6.1.3's observation generalized across the whole
// sweep).
type ClockSweepPoint struct {
	Ratio float64
	// FullyClientSecs / FullyServerSecs are wall times (cycles normalized
	// by the respective client clock) — the paper's Fig. 8 comparison needs
	// time, not raw cycles, across different clocks.
	FullyClientSecs float64
	FullyServerSecs float64
	FullyClientJ    float64
	FullyServerJ    float64
}

// ClockSweep runs the sweep at the given bandwidth.
func ClockSweep(ds *dataset.Dataset, bandwidthMbps float64, runs int, seed int64) ([]ClockSweepPoint, error) {
	if runs == 0 {
		runs = Runs
	}
	if seed == 0 {
		seed = 42
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	queries := queriesFor(ds, core.RangeQuery, runs, seed)

	var out []ClockSweepPoint
	for _, ratio := range []float64{1.0 / 8, 1.0 / 4, 1.0 / 2, 1.0} {
		pt := ClockSweepPoint{Ratio: ratio}
		for _, scheme := range []core.Scheme{core.FullyClient, core.FullyServer} {
			p := sim.DefaultParams()
			p.BandwidthBps = bandwidthMbps * 1e6
			p.Client.ClockHz = p.Server.ClockHz * ratio
			sys, err := sim.New(p)
			if err != nil {
				return nil, err
			}
			eng := core.NewEngineWithTree(ds, tree, sys)
			for _, q := range queries {
				if _, err := eng.Run(q, scheme, core.DataAtClient); err != nil {
					return nil, err
				}
			}
			r := sys.Result()
			secs := float64(r.TotalClientCycles()) / p.Client.ClockHz
			if scheme == core.FullyClient {
				pt.FullyClientSecs, pt.FullyClientJ = secs, r.Energy.Total()
			} else {
				pt.FullyServerSecs, pt.FullyServerJ = secs, r.Energy.Total()
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// WriteClockSweep renders the sweep.
func WriteClockSweep(w io.Writer, points []ClockSweepPoint, bandwidthMbps float64, runs int) error {
	if _, err := fmt.Fprintf(w, "== Client-clock sweep (Table 3), range queries, %g Mbps, sum of %d runs ==\n",
		bandwidthMbps, runs); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %16s %16s %14s %14s %10s\n",
		"MhzC/MhzS", "fully-client s", "fully-server s", "client J", "server J", "winner")
	for _, p := range points {
		winner := "client"
		if p.FullyServerSecs < p.FullyClientSecs && p.FullyServerJ < p.FullyClientJ {
			winner = "server"
		} else if p.FullyServerSecs < p.FullyClientSecs || p.FullyServerJ < p.FullyClientJ {
			winner = "split"
		}
		fmt.Fprintf(w, "%8.3f %16.3f %16.3f %14.4f %14.4f %10s\n",
			p.Ratio, p.FullyClientSecs, p.FullyServerSecs, p.FullyClientJ, p.FullyServerJ, winner)
	}
	return nil
}

// BroadcastComparison contrasts on-demand (pull) delivery of a hot region
// with broadcast dissemination — the paper's §2 discussion of [15]: when
// many clients want the same information, broadcast amortizes the server's
// transmission and lets each client receive with zero uplink energy.
type BroadcastComparison struct {
	// PullJ is one client's energy to fetch the region on demand (request
	// uplink + records downlink).
	PullJ float64
	// PullLatency is the pull response time.
	PullLatency float64
	// BroadcastJ is one client's expected energy to catch the same records
	// from the indexed broadcast.
	BroadcastJ float64
	// BroadcastLatency is the expected broadcast access time.
	BroadcastLatency float64
	// Items is the number of records in the hot region.
	Items int
}

// CompareBroadcast computes the comparison for a query window inside a hot
// district. Following the paper's framing of [15] ("several mobile devices
// are interested in the same information, and the amount of information to
// be disseminated is not too large"), the broadcast program carries the hot
// district's records — the neighborhood around the window, a ~1 MB slice —
// in Hilbert pack order with a (1, m) air index, rather than the whole
// state atlas.
func CompareBroadcast(ds *dataset.Dataset, window geom.Rect, bandwidthMbps float64) (BroadcastComparison, error) {
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return BroadcastComparison{}, err
	}

	// Pull: fully-at-server, data absent (records come down).
	p := sim.DefaultParams()
	p.BandwidthBps = bandwidthMbps * 1e6
	sys, err := sim.New(p)
	if err != nil {
		return BroadcastComparison{}, err
	}
	eng := core.NewEngineWithTree(ds, tree, sys)
	ans, err := eng.Run(core.Range(window), core.FullyServer, core.DataAtServerOnly)
	if err != nil {
		return BroadcastComparison{}, err
	}
	if len(ans.IDs) == 0 {
		return BroadcastComparison{}, fmt.Errorf("broadcast: window matches nothing")
	}
	r := sys.Result()

	// Broadcast program: the hot district around the window, selected with
	// the same Fig. 2 machinery the insufficient-memory scheme uses.
	ship, err := tree.ExtractSubset(window, rtree.Budget{
		Bytes:       1 << 20,
		RecordBytes: ds.RecordBytes,
	}, ops.Null{})
	if err != nil {
		return BroadcastComparison{}, err
	}
	// Positions (in program order) of the records matching the window.
	matching := map[uint32]bool{}
	for _, id := range ans.IDs {
		matching[id] = true
	}
	var positions []int
	for i, it := range ship.Items {
		if matching[it.ID] {
			positions = append(positions, i)
		}
	}
	if len(positions) != len(ans.IDs) {
		return BroadcastComparison{}, fmt.Errorf("broadcast: district misses %d matching records",
			len(ans.IDs)-len(positions))
	}
	prog := broadcast.Program{
		Items:            len(ship.Items),
		RecordBytes:      ds.RecordBytes,
		IndexBytes:       ship.IndexBytes() / 16, // a compact air directory
		IndexReplication: 8,
		BandwidthBps:     bandwidthMbps * 1e6,
	}
	tune, err := prog.ExpectedTuningSparse(positions, 128)
	if err != nil {
		return BroadcastComparison{}, err
	}

	return BroadcastComparison{
		PullJ:            r.Energy.Total(),
		PullLatency:      r.ElapsedSeconds,
		BroadcastJ:       tune.EnergyJoules(),
		BroadcastLatency: tune.LatencySeconds,
		Items:            len(ans.IDs),
	}, nil
}

// WriteBroadcastComparison renders the comparison.
func WriteBroadcastComparison(w io.Writer, c BroadcastComparison, bandwidthMbps float64) error {
	if _, err := fmt.Fprintf(w, "== Broadcast vs pull for a hot region (%d records, %g Mbps) ==\n",
		c.Items, bandwidthMbps); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s %14s %14s\n", "delivery", "client J", "latency s")
	fmt.Fprintf(w, "%-22s %14.4f %14.3f\n", "pull (request/reply)", c.PullJ, c.PullLatency)
	fmt.Fprintf(w, "%-22s %14.4f %14.3f\n", "broadcast (1,m index)", c.BroadcastJ, c.BroadcastLatency)
	fmt.Fprintln(w, "\npull spends transmitter energy per client and scales the server's work")
	fmt.Fprintln(w, "with the audience; broadcast trades latency for a receive-only client")
	fmt.Fprintln(w, "and constant server airtime regardless of the audience size.")
	return nil
}

// LoadSweepPoint is one server-utilization sweep value.
type LoadSweepPoint struct {
	Utilization     float64
	FullyClientSecs float64
	FullyServerSecs float64
	FullyClientJ    float64
	FullyServerJ    float64
}

// LoadSweep models the shared-server scenario of the §5.3 future work:
// under growing background utilization the offloading schemes queue behind
// other clients while fully-at-client execution is untouched. Range
// queries, data present, at the given bandwidth.
func LoadSweep(ds *dataset.Dataset, bandwidthMbps float64, runs int, seed int64) ([]LoadSweepPoint, error) {
	if runs == 0 {
		runs = Runs
	}
	if seed == 0 {
		seed = 42
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	queries := queriesFor(ds, core.RangeQuery, runs, seed)

	var out []LoadSweepPoint
	for _, rho := range []float64{0, 0.3, 0.6, 0.8, 0.9, 0.95} {
		pt := LoadSweepPoint{Utilization: rho}
		for _, scheme := range []core.Scheme{core.FullyClient, core.FullyServer} {
			p := sim.DefaultParams()
			p.BandwidthBps = bandwidthMbps * 1e6
			p.ServerUtilization = rho
			sys, err := sim.New(p)
			if err != nil {
				return nil, err
			}
			eng := core.NewEngineWithTree(ds, tree, sys)
			for _, q := range queries {
				if _, err := eng.Run(q, scheme, core.DataAtClient); err != nil {
					return nil, err
				}
			}
			r := sys.Result()
			secs := float64(r.TotalClientCycles()) / p.Client.ClockHz
			if scheme == core.FullyClient {
				pt.FullyClientSecs, pt.FullyClientJ = secs, r.Energy.Total()
			} else {
				pt.FullyServerSecs, pt.FullyServerJ = secs, r.Energy.Total()
			}
		}
		out = append(out, pt)
	}
	return out, nil
}

// WriteLoadSweep renders the sweep.
func WriteLoadSweep(w io.Writer, points []LoadSweepPoint, bandwidthMbps float64, runs int) error {
	if _, err := fmt.Fprintf(w, "== Server-load sweep, range queries, %g Mbps, sum of %d runs ==\n",
		bandwidthMbps, runs); err != nil {
		return err
	}
	fmt.Fprintf(w, "%12s %16s %16s %14s %14s\n",
		"utilization", "fully-client s", "fully-server s", "client J", "server J")
	for _, p := range points {
		fmt.Fprintf(w, "%12.2f %16.3f %16.3f %14.4f %14.4f\n",
			p.Utilization, p.FullyClientSecs, p.FullyServerSecs, p.FullyClientJ, p.FullyServerJ)
	}
	fmt.Fprintln(w, "\na loaded shared server erodes the offloading advantage: queueing delay")
	fmt.Fprintln(w, "inflates both the response time and the client's idle-listening energy.")
	return nil
}
