package experiments

import (
	"fmt"
	"io"
	"strings"
)

// ASCII rendition of the paper's stacked bar charts: each bandwidth gets a
// horizontal bar whose segments are the energy components (Processor,
// NIC-Tx, NIC-Rx, NIC-Idle), scaled to the figure's maximum. The legend
// matches the paper's: '#' processor, 'T' transmit, 'R' receive, 'i' idle.

const barWidth = 56

// WriteFigureBars renders the energy panels of a figure as stacked bars.
func WriteFigureBars(w io.Writer, fig Figure) error {
	if _, err := fmt.Fprintf(w, "-- Energy bars (# processor, T transmit, R receive, i idle) --\n"); err != nil {
		return err
	}
	// Scale to the largest total in the figure.
	maxJ := fig.Baseline.Energy.Total()
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if t := p.Energy.Total(); t > maxJ {
				maxJ = t
			}
		}
	}
	if maxJ <= 0 {
		fmt.Fprintln(w, "(no energy to plot)")
		return nil
	}

	fmt.Fprintf(w, "%-44s |%s| %.4f J\n", "fully-client (baseline)",
		bar(fig.Baseline.Energy.Processor, 0, 0, 0, maxJ), fig.Baseline.Energy.Total())
	for _, s := range fig.Series {
		fmt.Fprintln(w, s.Variant.Label+":")
		for _, p := range s.Points {
			e := p.Energy
			fmt.Fprintf(w, "  %6.0f Mbps %31s |%s| %.4f J\n",
				p.BandwidthMbps, "",
				bar(e.Processor, e.NICTx, e.NICRx, e.NICIdle, maxJ), e.Total())
		}
	}
	fmt.Fprintln(w)
	return nil
}

// bar renders one stacked bar.
func bar(proc, tx, rx, idle, maxJ float64) string {
	cells := func(v float64) int {
		return int(v / maxJ * barWidth)
	}
	var sb strings.Builder
	sb.WriteString(strings.Repeat("#", cells(proc)))
	sb.WriteString(strings.Repeat("T", cells(tx)))
	sb.WriteString(strings.Repeat("R", cells(rx)))
	sb.WriteString(strings.Repeat("i", cells(idle)))
	for sb.Len() < barWidth {
		sb.WriteByte(' ')
	}
	return sb.String()[:barWidth]
}

// InsufficientVariance sweeps Fig. 10 over several workload seeds and
// reports the spread of the crossovers — the honest error bars behind the
// single-seed figure (anchor placement on a clustered dataset makes the
// break-even point seed-sensitive).
type InsufficientVariance struct {
	BudgetBytes      int
	Seeds            []int64
	EnergyCrossovers []int // -1 = none within the swept range
	CyclesCrossovers []int
}

// InsufficientSeedSweep runs the Fig. 10 harness once per seed.
func InsufficientSeedSweep(cfg InsufficientConfig, seeds []int64) (InsufficientVariance, error) {
	v := InsufficientVariance{BudgetBytes: cfg.BudgetBytes, Seeds: seeds}
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		fig, err := Insufficient(c)
		if err != nil {
			return InsufficientVariance{}, err
		}
		v.EnergyCrossovers = append(v.EnergyCrossovers, fig.EnergyCrossover)
		v.CyclesCrossovers = append(v.CyclesCrossovers, fig.CyclesCrossover)
	}
	return v, nil
}

// WriteInsufficientVariance renders the sweep.
func WriteInsufficientVariance(w io.Writer, v InsufficientVariance) error {
	if _, err := fmt.Fprintf(w, "== Fig. 10 seed sensitivity, %.1f MB buffer ==\n",
		float64(v.BudgetBytes)/(1<<20)); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %18s %18s\n", "seed", "energy crossover", "cycles crossover")
	for i, seed := range v.Seeds {
		fmt.Fprintf(w, "%10d %18s %18s\n", seed,
			crossLabel(v.EnergyCrossovers[i]), crossLabel(v.CyclesCrossovers[i]))
	}
	fmt.Fprintln(w, "\nanchor placement on the clustered dataset moves the break-even point;")
	fmt.Fprintln(w, "the ordering (energy crossover before any cycles crossover) holds at")
	fmt.Fprintln(w, "every seed.")
	return nil
}

func crossLabel(y int) string {
	if y < 0 {
		return "none in range"
	}
	return fmt.Sprintf("y ≈ %d", y)
}
