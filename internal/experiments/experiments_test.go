package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
)

// Shared datasets: generating PA/NYC is cheap but not free, so tests share
// one instance.
var (
	paOnce  sync.Once
	pa      *dataset.Dataset
	nycOnce sync.Once
	nyc     *dataset.Dataset
)

func paDS() *dataset.Dataset {
	paOnce.Do(func() { pa = dataset.PA() })
	return pa
}

func nycDS() *dataset.Dataset {
	nycOnce.Do(func() { nyc = dataset.NYC() })
	return nyc
}

// reducedRuns keeps the shape tests quick while staying statistically
// meaningful; the benches run the full 100.
const reducedRuns = 40

func mustAdequate(t *testing.T, cfg Config) Figure {
	t.Helper()
	fig, err := Adequate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fig
}

func seriesByLabel(t *testing.T, fig Figure, label string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Variant.Label == label {
			return s
		}
	}
	t.Fatalf("series %q not found", label)
	return Series{}
}

// Fig. 4 / Fig. 6 shape: for point and NN queries, communication dominates
// and fully-at-client wins both energy and cycles at every bandwidth.
func TestPointQueriesFullyClientWinsEverywhere(t *testing.T) {
	fig := mustAdequate(t, Config{DS: paDS(), Kind: core.PointQuery, Runs: reducedRuns})
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if p.Energy.Total() <= fig.Baseline.Energy.Total() {
				t.Errorf("%s @%gMbps energy %.4f beats fully-client %.4f",
					s.Variant.Label, p.BandwidthMbps, p.Energy.Total(), fig.Baseline.Energy.Total())
			}
			if p.Cycles.Total() <= fig.Baseline.Cycles.Total() {
				t.Errorf("%s @%gMbps cycles %d beats fully-client %d",
					s.Variant.Label, p.BandwidthMbps, p.Cycles.Total(), fig.Baseline.Cycles.Total())
			}
		}
	}
	// The server-using schemes are communication-dominated: NIC energy must
	// dwarf processor energy at 2 Mbps.
	for _, s := range fig.Series {
		e := s.Points[0].Energy
		if nicE := e.NICTx + e.NICRx + e.NICIdle; nicE < 5*e.Processor {
			t.Errorf("%s: NIC energy %.4f not >> processor %.4f", s.Variant.Label, nicE, e.Processor)
		}
	}
}

func TestNNQueriesFullyClientWins(t *testing.T) {
	fig := mustAdequate(t, Config{DS: paDS(), Kind: core.NNQuery, Runs: reducedRuns})
	if len(fig.Series) != 1 {
		t.Fatalf("NN figure has %d series, want 1 (no filter/refine split)", len(fig.Series))
	}
	for _, p := range fig.Series[0].Points {
		if p.Energy.Total() <= fig.Baseline.Energy.Total() ||
			p.Cycles.Total() <= fig.Baseline.Cycles.Total() {
			t.Errorf("fully-server @%gMbps beat fully-client", p.BandwidthMbps)
		}
	}
}

// Fig. 5 shape: the paper's range-query findings.
func TestRangeQueriesPartitioningShape(t *testing.T) {
	fig := mustAdequate(t, Config{DS: paDS(), Kind: core.RangeQuery, Runs: reducedRuns})

	fsAbsent := seriesByLabel(t, fig, "fully-server/data-absent")
	fsPresent := seriesByLabel(t, fig, "fully-server/data-present")
	fcrsAbsent := seriesByLabel(t, fig, "filter-client-refine-server/data-absent")
	fcrsPresent := seriesByLabel(t, fig, "filter-client-refine-server/data-present")
	fsrc := seriesByLabel(t, fig, "filter-server-refine-client")

	last := len(Bandwidths) - 1

	// (1) Work partitioning pays off for range queries: fully-server with
	// the data present beats fully-client on both metrics at high bandwidth.
	if fsPresent.Points[last].Cycles.Total() >= fig.Baseline.Cycles.Total() {
		t.Error("fully-server/data-present never beats fully-client cycles")
	}
	if fsPresent.Points[last].Energy.Total() >= fig.Baseline.Energy.Total() {
		t.Error("fully-server/data-present never beats fully-client energy")
	}

	// (2) The performance crossover comes at a lower bandwidth than the
	// energy crossover (§6.1.1: communication Joules are more expensive
	// than communication seconds).
	cyclesCross, energyCross := -1.0, -1.0
	for _, p := range fsPresent.Points {
		if cyclesCross < 0 && p.Cycles.Total() < fig.Baseline.Cycles.Total() {
			cyclesCross = p.BandwidthMbps
		}
		if energyCross < 0 && p.Energy.Total() < fig.Baseline.Energy.Total() {
			energyCross = p.BandwidthMbps
		}
	}
	if cyclesCross < 0 || energyCross < 0 || energyCross < cyclesCross {
		t.Errorf("crossovers: cycles at %g Mbps, energy at %g Mbps — want cycles ≤ energy",
			cyclesCross, energyCross)
	}

	// (3) Keeping the data at the client helps, and helps cycles more than
	// energy (it shrinks Rx, not the dominant Tx).
	for i := range Bandwidths {
		if fsPresent.Points[i].Energy.Total() >= fsAbsent.Points[i].Energy.Total() {
			t.Errorf("data-present not cheaper in energy at %g Mbps", Bandwidths[i])
		}
		if fsPresent.Points[i].Cycles.Total() >= fsAbsent.Points[i].Cycles.Total() {
			t.Errorf("data-present not faster at %g Mbps", Bandwidths[i])
		}
	}
	cycleGain := float64(fsAbsent.Points[0].Cycles.Total()) / float64(fsPresent.Points[0].Cycles.Total())
	energyGain := fsAbsent.Points[0].Energy.Total() / fsPresent.Points[0].Energy.Total()
	if cycleGain <= energyGain {
		t.Errorf("data-present cycle gain %.2f not > energy gain %.2f", cycleGain, energyGain)
	}

	// (4) Among the hybrids (data present): filter-at-client+refine-at-
	// server is the performance side, filter-at-server+refine-at-client the
	// energy side.
	if fcrsPresent.Points[last].Cycles.Total() >= fsrc.Points[last].Cycles.Total() {
		t.Error("filter@client+refine@server not faster than filter@server+refine@client at 11 Mbps")
	}
	for i := range Bandwidths {
		if fsrc.Points[i].Energy.Total() >= fcrsPresent.Points[i].Energy.Total() {
			t.Errorf("filter@server+refine@client not more energy-efficient at %g Mbps", Bandwidths[i])
		}
	}

	// (5) Monotonicity: more bandwidth never hurts.
	for _, s := range fig.Series {
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Energy.Total() > s.Points[i-1].Energy.Total()*1.0001 {
				t.Errorf("%s energy not monotone at %g Mbps", s.Variant.Label, s.Points[i].BandwidthMbps)
			}
			if s.Points[i].Cycles.Total() > s.Points[i-1].Cycles.Total() {
				t.Errorf("%s cycles not monotone at %g Mbps", s.Variant.Label, s.Points[i].BandwidthMbps)
			}
		}
	}
	_ = fcrsAbsent
}

// Fig. 7 shape: NYC's smaller filtering selectivity makes the hybrid schemes
// more competitive relative to fully-client than on PA.
func TestNYCHybridsMoreCompetitive(t *testing.T) {
	paFig := mustAdequate(t, Config{DS: paDS(), Kind: core.RangeQuery, Runs: reducedRuns})
	nycFig := mustAdequate(t, Config{DS: nycDS(), Kind: core.RangeQuery, Runs: reducedRuns})

	// The paper's §6.1.2 wording is about the selectivity-driven message
	// components: NYC's smaller filtering selectivity shrinks the id
	// upload of filter@client+refine@server (Tx) and the id download of
	// filter@server+refine@client (Rx), per query.
	paFCRS := seriesByLabel(t, paFig, "filter-client-refine-server/data-present").Points[0]
	nycFCRS := seriesByLabel(t, nycFig, "filter-client-refine-server/data-present").Points[0]
	if nycFCRS.Energy.NICTx >= paFCRS.Energy.NICTx {
		t.Errorf("NYC filter@client Tx energy %.4f not below PA %.4f",
			nycFCRS.Energy.NICTx, paFCRS.Energy.NICTx)
	}
	paFSRC := seriesByLabel(t, paFig, "filter-server-refine-client").Points[0]
	nycFSRC := seriesByLabel(t, nycFig, "filter-server-refine-client").Points[0]
	if nycFSRC.Energy.NICRx >= paFSRC.Energy.NICRx {
		t.Errorf("NYC filter@server Rx energy %.4f not below PA %.4f",
			nycFSRC.Energy.NICRx, paFSRC.Energy.NICRx)
	}
	// And the hybrid that carries the big uplink gets closer to the
	// fully-client baseline on NYC.
	paRatio := paFCRS.Energy.Total() / paFig.Baseline.Energy.Total()
	nycRatio := nycFCRS.Energy.Total() / nycFig.Baseline.Energy.Total()
	if nycRatio >= paRatio {
		t.Errorf("filter@client: NYC energy ratio %.2f not better than PA %.2f", nycRatio, paRatio)
	}
}

// Fig. 8 shape: a faster client (C/S = 1/2) speeds up the client-heavy
// schemes with little impact on their energy.
func TestFasterClientHelpsClientHeavySchemes(t *testing.T) {
	slow := mustAdequate(t, Config{DS: paDS(), Kind: core.RangeQuery, Runs: reducedRuns})
	fast := mustAdequate(t, Config{DS: paDS(), Kind: core.RangeQuery, SpeedRatio: 0.5, Runs: reducedRuns})

	// Compare wall time: cycles / clock.
	slowClock := 1e9 / 8
	fastClock := 1e9 / 2
	slowT := float64(slow.Baseline.Cycles.Total()) / slowClock
	fastT := float64(fast.Baseline.Cycles.Total()) / fastClock
	if fastT >= slowT/2 {
		t.Errorf("4× faster client cut fully-client time only %.2fs → %.2fs", slowT, fastT)
	}
	// Energy of fully-client barely moves (same work, same per-event
	// energies; only the NIC-sleep and block components scale with time).
	se, fe := slow.Baseline.Energy.Total(), fast.Baseline.Energy.Total()
	if fe > se || fe < se*0.5 {
		t.Errorf("faster client changed fully-client energy implausibly: %.4f → %.4f", se, fe)
	}
	// Communication-bound schemes keep nearly the same wall time: their
	// cycles scale with the clock.
	slowFS := seriesByLabel(t, slow, "fully-server/data-present").Points[0]
	fastFS := seriesByLabel(t, fast, "fully-server/data-present").Points[0]
	slowFSt := float64(slowFS.Cycles.Total()) / slowClock
	fastFSt := float64(fastFS.Cycles.Total()) / fastClock
	if fastFSt < slowFSt*0.7 || fastFSt > slowFSt*1.3 {
		t.Errorf("fully-server wall time moved with client clock: %.3fs → %.3fs", slowFSt, fastFSt)
	}
}

// Fig. 9 shape: at 100 m the transmit power drops ~3×, making Tx-heavy
// schemes much more competitive in energy with unchanged cycles.
func TestShorterDistanceImprovesTxHeavySchemes(t *testing.T) {
	far := mustAdequate(t, Config{DS: paDS(), Kind: core.RangeQuery, Runs: reducedRuns})
	near := mustAdequate(t, Config{DS: paDS(), Kind: core.RangeQuery, DistanceM: 100, Runs: reducedRuns})

	farFCRS := seriesByLabel(t, far, "filter-client-refine-server/data-present").Points[0]
	nearFCRS := seriesByLabel(t, near, "filter-client-refine-server/data-present").Points[0]
	if gain := farFCRS.Energy.Total() / nearFCRS.Energy.Total(); gain < 2 {
		t.Errorf("100 m cut filter@client energy only %.2f×, want ≥2×", gain)
	}
	if farFCRS.Cycles.Total() != nearFCRS.Cycles.Total() {
		t.Error("distance changed cycles")
	}
	// Fully-client is untouched by distance.
	if far.Baseline.Energy.Total() != near.Baseline.Energy.Total() {
		t.Error("distance changed the fully-client baseline")
	}
}

// Fig. 10 shape: the caching scheme's energy crosses below fully-at-server
// within the swept proximity range for the 1 MB buffer, the crossover moves
// out (or beyond the range) for 2 MB, and fully-at-server keeps the
// performance lead throughout.
func TestInsufficientMemoryCrossovers(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 sweep in -short mode")
	}
	prox := []int{0, 40, 80, 120, 160, 200}
	fig1, err := Insufficient(InsufficientConfig{
		DS: paDS(), BudgetBytes: 1 << 20, Proximities: prox, Trials: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fig1.EnergyCrossover < 0 {
		t.Error("1 MB: no energy crossover in the swept range")
	}
	// The energy crossover always precedes any cycles crossover: the
	// communication the caching scheme avoids is more expensive in Joules
	// than in seconds (§6.2's "energy and performance criteria going
	// against each other").
	if fig1.CyclesCrossover >= 0 && fig1.CyclesCrossover <= fig1.EnergyCrossover {
		t.Errorf("1 MB: cycles crossover y=%d not after energy crossover y=%d",
			fig1.CyclesCrossover, fig1.EnergyCrossover)
	}
	fig2, err := Insufficient(InsufficientConfig{
		DS: paDS(), BudgetBytes: 2 << 20, Proximities: prox, Trials: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: the break-even proximity "gets higher (from 115 to 200) as
	// we increase the amount of data that is shipped" — 2 MB crosses later
	// than 1 MB (possibly beyond the swept range).
	if fig2.EnergyCrossover >= 0 && fig2.EnergyCrossover <= fig1.EnergyCrossover {
		t.Errorf("2 MB crossover y=%d not later than 1 MB y=%d",
			fig2.EnergyCrossover, fig1.EnergyCrossover)
	}
	// Download volume scales with the budget.
	if fig2.Points[0].ClientEnergy <= fig1.Points[0].ClientEnergy {
		t.Error("2 MB download not costlier than 1 MB")
	}
	// Fully-at-server leads on performance until (at least) well past the
	// energy crossover.
	for _, pt := range fig1.Points {
		if pt.Proximity <= fig1.EnergyCrossover && pt.ClientCycles < pt.ServerCycles {
			t.Errorf("1 MB: caching beat fully-server cycles already at y=%d", pt.Proximity)
		}
	}
}

func TestWriteFigureRendering(t *testing.T) {
	fig := mustAdequate(t, Config{DS: nycDS(), Kind: core.PointQuery, Runs: 10})
	var buf bytes.Buffer
	if err := WriteFigure(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Energy at the mobile client", "Total cycles", "fully-client (baseline)", "fully-server"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
	if s := Summary(fig); !strings.Contains(s, "fully-server") {
		t.Errorf("summary missing scheme labels: %q", s)
	}
}

func TestWriteInsufficientRendering(t *testing.T) {
	fig := InsufficientFigure{
		BudgetBytes:     1 << 20,
		Points:          []InsufficientPoint{{Proximity: 0, ClientEnergy: 1, ServerEnergy: 0.1}},
		EnergyCrossover: -1,
		CyclesCrossover: -1,
	}
	var buf bytes.Buffer
	if err := WriteInsufficientFigure(&buf, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.0 MB buffer") {
		t.Error("budget not rendered")
	}
}

func TestAdequateVariantSets(t *testing.T) {
	if len(AdequateVariants(core.NNQuery)) != 1 {
		t.Error("NN variant set")
	}
	if len(AdequateVariants(core.PointQuery)) != 3 {
		t.Error("point variant set")
	}
	if len(AdequateVariants(core.RangeQuery)) != 5 {
		t.Error("range variant set")
	}
}
