package experiments

import (
	"fmt"
	"io"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/dynrtree"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
	"mobispatial/internal/pmrquad"
	"mobispatial/internal/rstar"
	"mobispatial/internal/rtree"
	"mobispatial/internal/sim"
)

// Index comparison — the reference point of the paper's §2/§3: its
// predecessor study [2] compared spatial access methods (PMR quadtree,
// packed R-tree, buddy tree) for fully-client execution on memory-resident
// data, and the paper adopts the packed R-tree as the representative. This
// harness reproduces that comparison over the structures implemented here:
// the packed R-tree, the PMR quadtree, and the insertion-built (Guttman)
// R-tree the paper's §3 argues against for static data.

// IndexResult is one access method's fully-client cost on one query kind.
type IndexResult struct {
	Index      string
	Kind       core.QueryKind
	EnergyJ    float64
	Cycles     int64
	IndexBytes int
}

// IndexComparisonConfig parameterizes the comparison.
type IndexComparisonConfig struct {
	DS   *dataset.Dataset
	Runs int
	Seed int64
}

// CompareIndexes runs the three query workloads fully at the client over
// each access method and returns the cost matrix.
func CompareIndexes(cfg IndexComparisonConfig) ([]IndexResult, error) {
	if cfg.Runs == 0 {
		cfg.Runs = Runs
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}

	packed, err := rtree.Build(cfg.DS.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	dyn, err := dynrtree.BuildByInsertion(dynItems(cfg.DS), dynrtree.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	quad, err := pmrquad.Build(cfg.DS.Segments, cfg.DS.Extent, pmrquad.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}
	star, err := rstar.BuildByInsertion(rstarItems(cfg.DS), rstar.Config{}, ops.Null{})
	if err != nil {
		return nil, err
	}

	structures := []struct {
		name string
		idx  index.Index
	}{
		{"packed-rtree", packed},
		{"insertion-rtree", dyn},
		{"rstar-tree", star},
		{"pmr-quadtree", quad},
	}

	var out []IndexResult
	for _, kind := range []core.QueryKind{core.PointQuery, core.RangeQuery, core.NNQuery} {
		queries := queriesFor(cfg.DS, kind, cfg.Runs, cfg.Seed)
		for _, st := range structures {
			sys, err := sim.New(sim.DefaultParams())
			if err != nil {
				return nil, err
			}
			eng := core.NewEngineWithIndex(cfg.DS, st.idx, sys)
			for _, q := range queries {
				if _, err := eng.Run(q, core.FullyClient, core.DataAtClient); err != nil {
					return nil, fmt.Errorf("%s/%v: %w", st.name, kind, err)
				}
			}
			r := sys.Result()
			out = append(out, IndexResult{
				Index:      st.name,
				Kind:       kind,
				EnergyJ:    r.Energy.Total(),
				Cycles:     r.TotalClientCycles(),
				IndexBytes: st.idx.IndexBytes(),
			})
		}
	}
	return out, nil
}

func rstarItems(ds *dataset.Dataset) []rstar.Item {
	items := make([]rstar.Item, ds.Len())
	for i, s := range ds.Segments {
		items[i] = rstar.Item{MBR: s.MBR(), ID: uint32(i)}
	}
	return items
}

func dynItems(ds *dataset.Dataset) []dynrtree.Item {
	items := make([]dynrtree.Item, ds.Len())
	for i, s := range ds.Segments {
		items[i] = dynrtree.Item{MBR: s.MBR(), ID: uint32(i)}
	}
	return items
}

// WriteIndexComparison renders the comparison matrix.
func WriteIndexComparison(w io.Writer, results []IndexResult, runs int) error {
	if _, err := fmt.Fprintf(w, "== Access-method comparison, fully-at-client execution (sum of %d runs) ==\n", runs); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %-8s %12s %14s %12s\n", "structure", "query", "energy (J)", "cycles", "index MB")
	for _, r := range results {
		fmt.Fprintf(w, "%-18s %-8v %12.4f %14d %12.2f\n",
			r.Index, r.Kind, r.EnergyJ, r.Cycles, float64(r.IndexBytes)/(1<<20))
	}
	return nil
}
