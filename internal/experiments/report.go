package experiments

import (
	"fmt"
	"io"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
)

// Report runs the complete evaluation — every figure plus the extension
// experiments — and writes one self-contained markdown document. It is the
// push-button regeneration of EXPERIMENTS.md's raw material.

// ReportConfig scales the report's workloads.
type ReportConfig struct {
	// Runs per figure point (100 = paper scale).
	Runs int
	// Trials per Fig. 10 proximity value.
	Trials int
	// Workers bounds the per-figure fan-out.
	Workers int
	// SkipExtensions limits the report to the paper's figures.
	SkipExtensions bool
}

func (c *ReportConfig) fill() {
	if c.Runs == 0 {
		c.Runs = Runs
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
}

// WriteReport runs everything and renders the document.
func WriteReport(w io.Writer, cfg ReportConfig) error {
	cfg.fill()
	pa := dataset.PA()
	nyc := dataset.NYC()

	fmt.Fprintln(w, "# mobispatial — generated evaluation report")
	fmt.Fprintf(w, "\nWorkload scale: %d runs per figure point, %d trials per Fig. 10 value.\n", cfg.Runs, cfg.Trials)

	figures := []struct {
		id  string
		cfg Config
	}{
		{"Fig. 4 — point queries (PA)", Config{DS: pa, Kind: core.PointQuery}},
		{"Fig. 5 — range queries (PA)", Config{DS: pa, Kind: core.RangeQuery}},
		{"Fig. 6 — NN queries (PA)", Config{DS: pa, Kind: core.NNQuery}},
		{"Fig. 7 — range queries (NYC)", Config{DS: nyc, Kind: core.RangeQuery}},
		{"Fig. 8 — range queries, C/S = 1/2 (PA)", Config{DS: pa, Kind: core.RangeQuery, SpeedRatio: 0.5}},
		{"Fig. 9 — range queries, 100 m (PA)", Config{DS: pa, Kind: core.RangeQuery, DistanceM: 100}},
	}
	for _, f := range figures {
		c := f.cfg
		c.Runs = cfg.Runs
		c.Workers = cfg.Workers
		fig, err := Adequate(c)
		if err != nil {
			return fmt.Errorf("%s: %w", f.id, err)
		}
		fmt.Fprintf(w, "\n## %s\n\n```\n", f.id)
		if err := WriteFigure(w, fig); err != nil {
			return err
		}
		if err := WriteFigureBars(w, fig); err != nil {
			return err
		}
		fmt.Fprintln(w, "```")
		fmt.Fprintf(w, "\n%s\n", Summary(fig))
	}

	fmt.Fprintln(w, "\n## Fig. 10 — insufficient client memory (PA)")
	for _, budget := range []int{1 << 20, 2 << 20} {
		fig, err := Insufficient(InsufficientConfig{
			DS: pa, BudgetBytes: budget, Trials: cfg.Trials, Workers: cfg.Workers,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\n```")
		if err := WriteInsufficientFigure(w, fig); err != nil {
			return err
		}
		fmt.Fprintln(w, "```")
	}

	if cfg.SkipExtensions {
		return nil
	}

	fmt.Fprintln(w, "\n## Extensions")

	results, err := CompareIndexes(IndexComparisonConfig{DS: pa, Runs: cfg.Runs})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n```")
	if err := WriteIndexComparison(w, results, cfg.Runs); err != nil {
		return err
	}
	fmt.Fprintln(w, "```")

	clock, err := ClockSweep(pa, 6, cfg.Runs, 42)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n```")
	if err := WriteClockSweep(w, clock, 6, cfg.Runs); err != nil {
		return err
	}
	fmt.Fprintln(w, "```")

	load, err := LoadSweep(pa, 6, cfg.Runs, 42)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n```")
	if err := WriteLoadSweep(w, load, 6, cfg.Runs); err != nil {
		return err
	}
	fmt.Fprintln(w, "```")

	c := pa.Segments[2026].Midpoint()
	bc, err := CompareBroadcast(pa, rectAround(c.X, c.Y, 2000), 2)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n```")
	if err := WriteBroadcastComparison(w, bc, 2); err != nil {
		return err
	}
	fmt.Fprintln(w, "```")

	session, err := Session(SessionConfig{DS: pa})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\n```")
	if err := WriteSession(w, session, SessionConfig{}); err != nil {
		return err
	}
	fmt.Fprintln(w, "```")
	return nil
}

func rectAround(x, y, half float64) geom.Rect {
	return geom.Rect{
		Min: geom.Point{X: x - half, Y: y - half},
		Max: geom.Point{X: x + half, Y: y + half},
	}
}
