package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Text rendering of reproduced figures: one table for the energy panel, one
// for the cycles panel, in the same shape the paper's bar charts encode.

// WriteFigure renders an adequate-memory figure as text tables.
func WriteFigure(w io.Writer, fig Figure) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", fig.Title); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n-- Energy at the mobile client (J, sum of %d runs) --\n", fig.Runs)
	fmt.Fprintf(w, "%-44s", "scheme \\ bandwidth")
	for _, p := range fig.Series[0].Points {
		fmt.Fprintf(w, "%10.0fM", p.BandwidthMbps)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-44s", "fully-client (baseline)")
	for range fig.Series[0].Points {
		fmt.Fprintf(w, "%11.4f", fig.Baseline.Energy.Total())
	}
	fmt.Fprintln(w)
	for _, s := range fig.Series {
		fmt.Fprintf(w, "%-44s", s.Variant.Label)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%11.4f", p.Energy.Total())
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\n-- Total cycles at the client clock (sum of %d runs) --\n", fig.Runs)
	fmt.Fprintf(w, "%-44s", "scheme \\ bandwidth")
	for _, p := range fig.Series[0].Points {
		fmt.Fprintf(w, "%10.0fM", p.BandwidthMbps)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-44s", "fully-client (baseline)")
	for range fig.Series[0].Points {
		fmt.Fprintf(w, "%11.3e", float64(fig.Baseline.Cycles.Total()))
	}
	fmt.Fprintln(w)
	for _, s := range fig.Series {
		fmt.Fprintf(w, "%-44s", s.Variant.Label)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%11.3e", float64(p.Cycles.Total()))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\n-- Energy decomposition at 2 Mbps (J: processor / NIC-Tx / NIC-Rx / NIC-Idle) --\n")
	b := fig.Baseline.Energy
	fmt.Fprintf(w, "%-44s %8.4f /%8.4f /%8.4f /%8.4f\n",
		"fully-client (baseline)", b.Processor, b.NICTx, b.NICRx, b.NICIdle)
	for _, s := range fig.Series {
		e := s.Points[0].Energy
		fmt.Fprintf(w, "%-44s %8.4f /%8.4f /%8.4f /%8.4f\n",
			s.Variant.Label, e.Processor, e.NICTx, e.NICRx, e.NICIdle)
	}
	fmt.Fprintln(w)
	return nil
}

// WriteInsufficientFigure renders a Fig. 10 reproduction.
func WriteInsufficientFigure(w io.Writer, fig InsufficientFigure) error {
	if _, err := fmt.Fprintf(w, "== Insufficient memory, %.1f MB buffer ==\n",
		float64(fig.BudgetBytes)/(1024*1024)); err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %20s %20s %14s %14s %10s\n",
		"proximity", "client-energy J", "server-energy J", "client-cycles", "server-cycles", "refetches")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%10d %13.4f ±%.4f %13.4f ±%.4f %14.3e %14.3e %10.1f\n",
			p.Proximity, p.ClientEnergy, p.ClientEnergyCI, p.ServerEnergy, p.ServerEnergyCI,
			p.ClientCycles, p.ServerCycles, p.Refetches)
	}
	if fig.EnergyCrossover >= 0 {
		fmt.Fprintf(w, "energy crossover: fully-client wins beyond y ≈ %d\n", fig.EnergyCrossover)
	} else {
		fmt.Fprintln(w, "energy crossover: none in the swept range")
	}
	if fig.CyclesCrossover >= 0 {
		fmt.Fprintf(w, "cycles crossover: fully-client wins beyond y ≈ %d\n", fig.CyclesCrossover)
	} else {
		fmt.Fprintln(w, "cycles crossover: none (fully-at-server wins performance everywhere)")
	}
	fmt.Fprintln(w)
	return nil
}

// Summary compactly describes where a series beats the baseline — used for
// the EXPERIMENTS.md shape records.
func Summary(fig Figure) string {
	var sb strings.Builder
	for _, s := range fig.Series {
		eCross, cCross := -1.0, -1.0
		for _, p := range s.Points {
			if eCross < 0 && p.Energy.Total() < fig.Baseline.Energy.Total() {
				eCross = p.BandwidthMbps
			}
			if cCross < 0 && p.Cycles.Total() < fig.Baseline.Cycles.Total() {
				cCross = p.BandwidthMbps
			}
		}
		fmt.Fprintf(&sb, "%s: ", s.Variant.Label)
		if cCross >= 0 {
			fmt.Fprintf(&sb, "beats fully-client cycles from %g Mbps, ", cCross)
		} else {
			sb.WriteString("never beats fully-client cycles, ")
		}
		if eCross >= 0 {
			fmt.Fprintf(&sb, "energy from %g Mbps\n", eCross)
		} else {
			sb.WriteString("never on energy\n")
		}
	}
	return sb.String()
}
