package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mobispatial/internal/core"
	"mobispatial/internal/geom"
)

func TestClockSweepShape(t *testing.T) {
	pts, err := ClockSweep(nycDS(), 6, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d sweep points", len(pts))
	}
	// Fully-client wall time scales inversely with the clock; fully-server
	// barely moves (communication-bound).
	if pts[3].FullyClientSecs >= pts[0].FullyClientSecs/4 {
		t.Errorf("8× clock cut fully-client only %.3f → %.3f s",
			pts[0].FullyClientSecs, pts[3].FullyClientSecs)
	}
	ratio := pts[3].FullyServerSecs / pts[0].FullyServerSecs
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("fully-server wall time moved %.2f× across the clock sweep", ratio)
	}
	var buf bytes.Buffer
	if err := WriteClockSweep(&buf, pts, 6, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MhzC/MhzS") {
		t.Error("rendering incomplete")
	}
}

func TestLoadSweepShape(t *testing.T) {
	pts, err := LoadSweep(nycDS(), 6, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("%d sweep points", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// Load leaves fully-client untouched and degrades fully-server in both
	// metrics, monotonically.
	if first.FullyClientSecs != last.FullyClientSecs || first.FullyClientJ != last.FullyClientJ {
		t.Error("server load affected fully-client execution")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FullyServerSecs <= pts[i-1].FullyServerSecs {
			t.Errorf("fully-server time not monotone at ρ=%.2f", pts[i].Utilization)
		}
		if pts[i].FullyServerJ <= pts[i-1].FullyServerJ {
			t.Errorf("fully-server energy not monotone at ρ=%.2f", pts[i].Utilization)
		}
	}
	var buf bytes.Buffer
	if err := WriteLoadSweep(&buf, pts, 6, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "utilization") {
		t.Error("rendering incomplete")
	}
}

func TestCompareBroadcastShape(t *testing.T) {
	ds := nycDS()
	c := ds.Segments[999].Midpoint()
	window := geom.Rect{
		Min: geom.Point{X: c.X - 800, Y: c.Y - 800},
		Max: geom.Point{X: c.X + 800, Y: c.Y + 800},
	}
	cmp, err := CompareBroadcast(ds, window, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Items <= 0 || cmp.PullJ <= 0 || cmp.BroadcastJ <= 0 {
		t.Fatalf("degenerate comparison: %+v", cmp)
	}
	// Broadcast trades latency for receive-only operation: its latency must
	// exceed pull's (the client waits for the cycle), and its energy must
	// stay within an order of magnitude of pull (it burns no transmit
	// power).
	if cmp.BroadcastLatency <= cmp.PullLatency {
		t.Errorf("broadcast latency %.3f not above pull %.3f", cmp.BroadcastLatency, cmp.PullLatency)
	}
	if cmp.BroadcastJ > cmp.PullJ*10 {
		t.Errorf("broadcast energy %.4f implausibly above pull %.4f", cmp.BroadcastJ, cmp.PullJ)
	}
	var buf bytes.Buffer
	if err := WriteBroadcastComparison(&buf, cmp, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "broadcast (1,m index)") {
		t.Error("rendering incomplete")
	}
}

func TestSessionAdaptiveWins(t *testing.T) {
	results, err := Session(SessionConfig{DS: nycDS(), Queries: 40})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SessionResult{}
	for _, r := range results {
		byName[r.Strategy] = r
	}
	ada, okA := byName["adaptive"]
	local, okL := byName["all-local"]
	server, okS := byName["all-server"]
	if !okA || !okL || !okS {
		t.Fatalf("missing strategies: %+v", results)
	}
	// The adaptive policy must beat both fixed extremes on energy over a
	// mixed workload (that is its purpose), and it must actually mix.
	if ada.EnergyJ >= local.EnergyJ || ada.EnergyJ >= server.EnergyJ {
		t.Fatalf("adaptive %.4f J not below fixed (local %.4f, server %.4f)",
			ada.EnergyJ, local.EnergyJ, server.EnergyJ)
	}
	if ada.Offloaded == 0 || ada.Offloaded == 40 {
		t.Fatalf("adaptive did not mix: offloaded %d of 40", ada.Offloaded)
	}
	var buf bytes.Buffer
	if err := WriteSession(&buf, results, SessionConfig{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "adaptive") {
		t.Error("rendering incomplete")
	}
}

func TestWriteFigureBars(t *testing.T) {
	fig := mustAdequate(t, Config{DS: nycDS(), Kind: core.PointQuery, Runs: 10})
	var buf bytes.Buffer
	if err := WriteFigureBars(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Energy bars") || !strings.Contains(out, "TTT") {
		t.Errorf("bars missing expected content:\n%s", out)
	}
	// Every bar line must have exactly barWidth cells between the pipes.
	for _, line := range strings.Split(out, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			j := strings.LastIndexByte(line, '|')
			if j-i-1 != barWidth {
				t.Errorf("bar width %d != %d in %q", j-i-1, barWidth, line)
			}
		}
	}
	// Degenerate figure: nothing to plot.
	var empty bytes.Buffer
	if err := WriteFigureBars(&empty, Figure{Series: []Series{{}}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no energy to plot") {
		t.Error("degenerate case not handled")
	}
}

func TestInsufficientSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep in -short mode")
	}
	v, err := InsufficientSeedSweep(InsufficientConfig{
		DS: paDS(), BudgetBytes: 1 << 20, Trials: 1,
		Proximities: []int{0, 100, 200},
	}, []int64{4242, 777})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.EnergyCrossovers) != 2 || len(v.CyclesCrossovers) != 2 {
		t.Fatalf("sweep shape: %+v", v)
	}
	// The invariant claimed in the rendering: at every seed, any cycles
	// crossover comes at or after the energy crossover.
	for i := range v.Seeds {
		e, c := v.EnergyCrossovers[i], v.CyclesCrossovers[i]
		if c >= 0 && (e < 0 || c < e) {
			t.Fatalf("seed %d: cycles crossover %d before energy %d", v.Seeds[i], c, e)
		}
	}
	var buf bytes.Buffer
	if err := WriteInsufficientVariance(&buf, v); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "seed sensitivity") {
		t.Error("rendering incomplete")
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report in -short mode")
	}
	var buf bytes.Buffer
	err := WriteReport(&buf, ReportConfig{Runs: 10, Trials: 1, SkipExtensions: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# mobispatial — generated evaluation report",
		"Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
		"Energy at the mobile client",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
