package obs

import (
	"testing"
	"time"
)

func TestSpanStagesAndAttribution(t *testing.T) {
	tr := NewTracer(8, 1)
	sp := tr.Start("range")
	sp.SetScheme("fully-client")
	sp.Begin(StagePlan)
	time.Sleep(time.Millisecond)
	sp.Begin(StageIndexWalk) // closes plan, opens index-walk
	time.Sleep(time.Millisecond)
	sp.EndStage()
	sp.Lap(StageWire, 0.5)
	sp.Attribute(StageWire, 2.0, 1e6)
	sp.Finish()

	if sp.Laps[StagePlan].Seconds <= 0 || sp.Laps[StageIndexWalk].Seconds <= 0 {
		t.Errorf("clocked stages not recorded: %+v", sp.Laps)
	}
	if sp.Laps[StageWire].Seconds != 0.5 || sp.Laps[StageWire].Joules != 2.0 {
		t.Errorf("wire lap = %+v", sp.Laps[StageWire])
	}
	if sp.TotalJoules() != 2.0 {
		t.Errorf("total joules = %g, want 2", sp.TotalJoules())
	}
	if sp.End.IsZero() || sp.TotalSeconds() <= 0 {
		t.Error("finish did not close the span")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(100, 4) // every 4th span kept
	for i := 0; i < 40; i++ {
		sp := tr.Start("k")
		sp.SetScheme("s")
		sp.Finish()
	}
	snap := tr.Snapshot()
	if snap.Started != 40 || snap.Finished != 40 {
		t.Errorf("started=%d finished=%d, want 40", snap.Started, snap.Finished)
	}
	if len(snap.Sampled) != 10 {
		t.Errorf("sampled %d spans at 1-in-4 of 40, want 10", len(snap.Sampled))
	}
	if len(snap.Slowest) != 1 || !snap.Slowest[0].Exemplar {
		t.Errorf("slowest = %+v, want one exemplar", snap.Slowest)
	}
}

func TestTracerRingWraps(t *testing.T) {
	tr := NewTracer(4, 1)
	for i := 0; i < 10; i++ {
		sp := tr.Start("k")
		sp.Lap(StagePlan, float64(i+1))
		sp.Finish()
	}
	snap := tr.Snapshot()
	if len(snap.Sampled) != 4 {
		t.Fatalf("ring holds %d, want 4", len(snap.Sampled))
	}
	// Oldest surviving first: spans 7,8,9,10 by plan seconds.
	for i, want := range []float64{7, 8, 9, 10} {
		if got := snap.Sampled[i].Stages[0].Seconds; got != want {
			t.Errorf("ring[%d] plan seconds = %g, want %g", i, got, want)
		}
	}
}

func TestTracerExemplarKeepsSlowest(t *testing.T) {
	tr := NewTracer(4, 1000000) // ring effectively never samples
	for _, sec := range []float64{0.1, 3.0, 0.2} {
		sp := tr.Start("range")
		sp.SetScheme("server-ids")
		// Backdate the start so the finished wall time is sec.
		sp.Start = time.Now().Add(-time.Duration(sec * float64(time.Second)))
		sp.Finish()
	}
	snap := tr.Snapshot()
	if len(snap.Slowest) != 1 {
		t.Fatalf("exemplars = %d, want 1", len(snap.Slowest))
	}
	if got := snap.Slowest[0].Seconds; got < 2.9 {
		t.Errorf("exemplar seconds = %g, want the slowest (~3.0)", got)
	}
}

func TestDefaultEnergyModel(t *testing.T) {
	em := DefaultEnergyModel()
	if em.ClientHz <= 0 {
		t.Fatal("client clock not set")
	}
	// One second of compute burns more than one second of blocked wait,
	// and transmit is the most expensive state (the paper's Table 2 order).
	cj, cc := em.Compute(1)
	wj, _ := em.Wait(1)
	tj, _ := em.Tx(1)
	rj, _ := em.Rx(1)
	if !(tj > cj && cj > rj && rj > wj && wj > 0) {
		t.Errorf("power ordering tx=%g compute=%g rx=%g wait=%g violates Table 2", tj, cj, rj, wj)
	}
	if cc != em.ClientHz {
		t.Errorf("compute cycles = %g, want ClientHz", cc)
	}
	if sec := em.TxSeconds(1000, 8000); sec != 1.0 {
		t.Errorf("TxSeconds(1000B, 8kbps) = %g, want 1", sec)
	}
	if sec := em.TxSeconds(1000, 0); sec != 0 {
		t.Errorf("TxSeconds with unknown bandwidth = %g, want 0", sec)
	}
}

func TestNICExchangeJoules(t *testing.T) {
	em := DefaultEnergyModel()
	if em.WakeupJoules() <= 0 {
		t.Fatal("wakeup transition should cost energy")
	}
	// The same bytes in one exchange must cost less than in sixteen: the
	// transfer term is identical, only the wakeups differ.
	const bw = 2e6
	one := em.NICExchangeJoules(16*100, 16*400, 1, bw)
	sixteen := em.NICExchangeJoules(16*100, 16*400, 16, bw)
	if diff := sixteen - one; diff <= 0 {
		t.Fatalf("batched exchange not cheaper: %g vs %g", one, sixteen)
	} else if want := 15 * em.WakeupJoules(); diff < want*0.999 || diff > want*1.001 {
		t.Fatalf("exchange delta %g, want 15 wakeups = %g", diff, want)
	}
	// Unknown bandwidth: wakeups still charged, transfer free.
	if got, want := em.NICExchangeJoules(1000, 1000, 3, 0), 3*em.WakeupJoules(); got != want {
		t.Fatalf("no-bandwidth pricing = %g, want %g", got, want)
	}
}
