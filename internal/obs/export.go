// export.go: the two serialized faces of a Snapshot — Prometheus exposition
// text for /metrics scrapes, and the internal/proto stats message for
// in-protocol pulls over an existing query connection (cmd/mqtop, the
// client's StatsSnapshot).
package obs

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mobispatial/internal/proto"
)

// sanitize maps NaN to 0: the wire snapshot rejects NaN (proto validation)
// and Prometheus text would parse it but poison downstream rate() math.
func sanitize(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// baseName strips the label block from a composed metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// withLabel splices an extra label into a composed metric name:
// withLabel(`x{a="b"}`, `quantile="0.5"`) → `x{a="b",quantile="0.5"}`.
func withLabel(name, label string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// WritePrometheus renders the snapshot in Prometheus exposition format.
// Histograms export as summaries: quantile series plus _sum and _count.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	typed := make(map[string]bool)
	emitType := func(name, kind string) {
		if base := baseName(name); !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, c := range snap.Counters {
		emitType(c.Name, "counter")
		fmt.Fprintf(w, "%s %d\n", c.Name, c.Value)
	}
	for _, g := range snap.Gauges {
		emitType(g.Name, "gauge")
		fmt.Fprintf(w, "%s %g\n", g.Name, sanitize(g.Value))
	}
	for _, h := range snap.Hists {
		emitType(h.Name, "summary")
		for _, q := range [...]struct {
			label string
			v     float64
		}{
			{`quantile="0.5"`, h.P50},
			{`quantile="0.95"`, h.P95},
			{`quantile="0.99"`, h.P99},
		} {
			fmt.Fprintf(w, "%s %g\n", withLabel(h.Name, q.label), sanitize(q.v))
		}
		fmt.Fprintf(w, "%s_sum %g\n", h.Name, sanitize(h.Mean)*float64(h.Count))
		fmt.Fprintf(w, "%s_count %d\n", h.Name, h.Count)
	}
	return nil
}

// capEntries truncates a snapshot section to the wire limit.
func capEntries[T any](s []T) []T {
	if len(s) > proto.MaxStatsEntries {
		return s[:proto.MaxStatsEntries]
	}
	return s
}

// ToStatsMsg converts a snapshot into the in-protocol stats message.
// Sections beyond the wire's entry cap are truncated (names sort
// deterministically, so truncation is stable scrape to scrape).
func ToStatsMsg(id uint32, uptimeMicros uint64, snap Snapshot) *proto.StatsMsg {
	m := &proto.StatsMsg{ID: id, UptimeMicros: uptimeMicros}
	for _, c := range capEntries(snap.Counters) {
		m.Counters = append(m.Counters, proto.StatCounter{Name: c.Name, Value: c.Value})
	}
	for _, g := range capEntries(snap.Gauges) {
		m.Gauges = append(m.Gauges, proto.StatGauge{Name: g.Name, Value: sanitize(g.Value)})
	}
	for _, h := range capEntries(snap.Hists) {
		m.Hists = append(m.Hists, proto.StatHist{
			Name:  h.Name,
			Count: h.Count,
			Mean:  sanitize(h.Mean),
			Min:   sanitize(h.Min),
			Max:   sanitize(h.Max),
			P50:   sanitize(h.P50),
			P95:   sanitize(h.P95),
			P99:   sanitize(h.P99),
		})
	}
	return m
}

// SnapshotFromMsg converts a wire stats message back into snapshot rows —
// the consumer side (mqtop, mqload's end-of-run report).
func SnapshotFromMsg(m *proto.StatsMsg) Snapshot {
	var snap Snapshot
	for _, c := range m.Counters {
		snap.Counters = append(snap.Counters, CounterValue{Name: c.Name, Value: c.Value})
	}
	for _, g := range m.Gauges {
		snap.Gauges = append(snap.Gauges, GaugeValue{Name: g.Name, Value: g.Value})
	}
	for _, h := range m.Hists {
		snap.Hists = append(snap.Hists, HistValue{Name: h.Name, HistSummary: HistSummary{
			Count: h.Count, Mean: h.Mean, Min: h.Min, Max: h.Max,
			P50: h.P50, P95: h.P95, P99: h.P99,
		}})
	}
	return snap
}
