// span.go: lightweight per-query spans. A span decomposes one query into the
// paper's segments — parse → plan → index-walk → serialize → wire →
// server-exec → reply — and carries, per stage, measured wall-clock seconds
// plus modeled Joules and client-clock cycles (energy.go). Finished spans
// land in a fixed ring buffer with 1-in-K sampling, and the slowest span per
// (scheme, kind) is always retained as an exemplar, so /traces shows both
// the typical and the pathological query even at high QPS.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one segment of a query's lifecycle.
type Stage uint8

// The span stages, in execution order.
const (
	// StageParse is request decoding (server side).
	StageParse Stage = iota
	// StagePlan is the partitioning decision (client side): the §4.1
	// advisor run against measured link conditions.
	StagePlan
	// StageIndexWalk is index filtering + refinement, wherever it runs.
	StageIndexWalk
	// StageSerialize is response/request encoding and the response write.
	StageSerialize
	// StageWire is time attributed to the radio: modeled tx + rx transfer.
	StageWire
	// StageServerExec is the wait for the server's answer (client side) or
	// the admitted execution (server side).
	StageServerExec
	// StageReply is answer materialization at the client.
	StageReply
	// StageFallback is degraded-mode local execution at the client: the
	// breaker is open and the query is answered from the local index
	// instead of the link.
	StageFallback
	// NumStages bounds the stage array.
	NumStages
)

var stageNames = [NumStages]string{
	"parse", "plan", "index-walk", "serialize", "wire", "server-exec", "reply", "fallback",
}

// String implements fmt.Stringer.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage(?)"
}

// StageLap is one stage's accounting: measured seconds plus modeled energy
// and client-clock cycles.
type StageLap struct {
	Seconds float64
	Joules  float64
	Cycles  float64
}

// Span is one query's trace. A span is owned by a single goroutine until
// Finish; all methods are nil-safe so disabled observability needs no
// branches at call sites.
type Span struct {
	Kind   string
	Scheme string
	Start  time.Time
	End    time.Time
	Err    bool
	Laps   [NumStages]StageLap

	cur   Stage
	curAt time.Time
	open  bool
	tr    *Tracer
}

// Begin closes any open stage and opens st.
func (s *Span) Begin(st Stage) {
	if s == nil {
		return
	}
	now := time.Now()
	s.closeStage(now)
	s.cur, s.curAt, s.open = st, now, true
}

// EndStage closes the open stage, if any.
func (s *Span) EndStage() {
	if s == nil {
		return
	}
	s.closeStage(time.Now())
}

func (s *Span) closeStage(now time.Time) {
	if s.open {
		s.Laps[s.cur].Seconds += now.Sub(s.curAt).Seconds()
		s.open = false
	}
}

// Lap adds already-measured seconds to st without clocking.
func (s *Span) Lap(st Stage, seconds float64) {
	if s == nil || seconds <= 0 {
		return
	}
	s.Laps[st].Seconds += seconds
}

// Attribute adds modeled energy and cycles to st.
func (s *Span) Attribute(st Stage, joules, cycles float64) {
	if s == nil {
		return
	}
	s.Laps[st].Joules += joules
	s.Laps[st].Cycles += cycles
}

// SetScheme labels the span with its partitioning scheme.
func (s *Span) SetScheme(scheme string) {
	if s != nil {
		s.Scheme = scheme
	}
}

// SetErr marks the span failed.
func (s *Span) SetErr() {
	if s != nil {
		s.Err = true
	}
}

// TotalSeconds returns the span's wall-clock duration (End-Start once
// finished; summed stage laps before that).
func (s *Span) TotalSeconds() float64 {
	if s == nil {
		return 0
	}
	if !s.End.IsZero() {
		return s.End.Sub(s.Start).Seconds()
	}
	var sum float64
	for _, l := range s.Laps {
		sum += l.Seconds
	}
	return sum
}

// TotalJoules returns the span's modeled energy.
func (s *Span) TotalJoules() float64 {
	if s == nil {
		return 0
	}
	var sum float64
	for _, l := range s.Laps {
		sum += l.Joules
	}
	return sum
}

// Finish closes the span and hands it to its tracer for retention.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	now := time.Now()
	s.closeStage(now)
	s.End = now
	if s.tr != nil {
		s.tr.retain(s)
	}
}

// maxExemplars bounds the slowest-span table (schemes × kinds is small; the
// cap only guards against label explosions).
const maxExemplars = 64

// Tracer retains finished spans: a ring buffer of every Kth span plus the
// slowest span per (scheme, kind) exemplar.
type Tracer struct {
	sampleEvery uint64
	started     atomic.Uint64

	mu        sync.Mutex
	ring      []*Span
	next      int
	finished  uint64
	exemplars map[string]*Span

	pool sync.Pool
}

// NewTracer builds a tracer with the given ring capacity and 1-in-K
// sampling rate (values < 1 default to 256 and 16).
func NewTracer(capacity, sampleEvery int) *Tracer {
	if capacity < 1 {
		capacity = 256
	}
	if sampleEvery < 1 {
		sampleEvery = 16
	}
	t := &Tracer{
		sampleEvery: uint64(sampleEvery),
		ring:        make([]*Span, 0, capacity),
		exemplars:   make(map[string]*Span),
	}
	t.pool.New = func() any { return &Span{} }
	return t
}

// Start opens a span for one query. Nil-safe: a nil tracer returns a nil
// span, and every span method on nil is a no-op.
func (t *Tracer) Start(kind string) *Span {
	if t == nil {
		return nil
	}
	s := t.pool.Get().(*Span)
	*s = Span{Kind: kind, Start: time.Now(), tr: t}
	t.started.Add(1)
	return s
}

// Started returns the number of spans started.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// retain decides what survives of a finished span: ring retention for every
// Kth span, exemplar retention for per-(scheme, kind) maxima, and the pool
// for everything else.
func (t *Tracer) retain(s *Span) {
	n := t.started.Load()
	keepRing := t.sampleEvery == 1 || n%t.sampleEvery == 0

	t.mu.Lock()
	t.finished++
	key := s.Scheme + "|" + s.Kind
	ex := t.exemplars[key]
	keepExemplar := ex == nil && len(t.exemplars) < maxExemplars ||
		ex != nil && s.TotalSeconds() > ex.TotalSeconds()
	if keepExemplar {
		t.exemplars[key] = s
	}
	if keepRing {
		if len(t.ring) < cap(t.ring) {
			t.ring = append(t.ring, s)
		} else {
			t.ring[t.next] = s
			t.next = (t.next + 1) % cap(t.ring)
		}
	}
	t.mu.Unlock()

	if !keepRing && !keepExemplar {
		// Evicted ring/exemplar spans are left to the GC (they may be
		// referenced from both tables); only never-retained spans recycle.
		t.pool.Put(s)
	}
}

// StageView is one stage of a span snapshot (zero stages omitted).
type StageView struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
	Joules  float64 `json:"joules,omitempty"`
	Cycles  float64 `json:"cycles,omitempty"`
}

// SpanView is an immutable copy of a retained span, for /traces.
type SpanView struct {
	Kind        string      `json:"kind"`
	Scheme      string      `json:"scheme,omitempty"`
	StartUnixNs int64       `json:"start_unix_ns"`
	Seconds     float64     `json:"seconds"`
	Joules      float64     `json:"joules"`
	Err         bool        `json:"err,omitempty"`
	Exemplar    bool        `json:"exemplar,omitempty"`
	Stages      []StageView `json:"stages"`
}

func viewOf(s *Span, exemplar bool) SpanView {
	v := SpanView{
		Kind:        s.Kind,
		Scheme:      s.Scheme,
		StartUnixNs: s.Start.UnixNano(),
		Seconds:     s.TotalSeconds(),
		Joules:      s.TotalJoules(),
		Err:         s.Err,
		Exemplar:    exemplar,
	}
	for st, lap := range s.Laps {
		if lap == (StageLap{}) {
			continue
		}
		v.Stages = append(v.Stages, StageView{
			Stage:   Stage(st).String(),
			Seconds: lap.Seconds,
			Joules:  lap.Joules,
			Cycles:  lap.Cycles,
		})
	}
	return v
}

// TraceSnapshot is the tracer's exported state.
type TraceSnapshot struct {
	Started  uint64     `json:"started"`
	Finished uint64     `json:"finished"`
	Sampled  []SpanView `json:"sampled"`
	Slowest  []SpanView `json:"slowest"`
}

// Snapshot copies the retained spans, newest ring entries last.
func (t *Tracer) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{Started: t.started.Load(), Finished: t.finished}
	// Ring in insertion order: oldest surviving entry first.
	for i := 0; i < len(t.ring); i++ {
		idx := i
		if len(t.ring) == cap(t.ring) {
			idx = (t.next + i) % len(t.ring)
		}
		snap.Sampled = append(snap.Sampled, viewOf(t.ring[idx], false))
	}
	for _, s := range t.exemplars {
		snap.Slowest = append(snap.Slowest, viewOf(s, true))
	}
	return snap
}
