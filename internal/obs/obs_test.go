package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("a")
	c2 := r.Counter("a")
	if c1 != c2 {
		t.Error("same name returned distinct counters")
	}
	if r.Gauge("a") != r.Gauge("a") || r.Histogram("a") != r.Histogram("a") {
		t.Error("gauge/histogram handles not stable")
	}
	c1.Inc()
	c1.Add(4)
	if got := c2.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := &Gauge{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 4000 {
		t.Errorf("gauge = %g, want 4000", got)
	}
}

func TestName(t *testing.T) {
	if got := Name("x"); got != "x" {
		t.Errorf("Name(x) = %q", got)
	}
	want := `queries_total{scheme="server-ids",kind="range"}`
	if got := Name("queries_total", "scheme", "server-ids", "kind", "range"); got != want {
		t.Errorf("Name = %q, want %q", got, want)
	}
}

func TestNilSafety(t *testing.T) {
	// Every handle and the hub must be no-ops when nil: this is what lets
	// instrumented code run without obs-enabled branches.
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		r  *Registry
		tr *Tracer
		hb *Hub
	)
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Summary().Count != 0 {
		t.Error("nil handles returned nonzero values")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry returned non-nil handles")
	}
	if len(r.Snapshot().Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	sp := tr.Start("k")
	sp.Begin(StagePlan)
	sp.Lap(StageWire, 1)
	sp.Attribute(StageWire, 1, 1)
	sp.SetScheme("s")
	sp.SetErr()
	sp.EndStage()
	sp.Finish()
	if sp.TotalSeconds() != 0 || sp.TotalJoules() != 0 {
		t.Error("nil span returned nonzero totals")
	}
	if tr.Started() != 0 || len(tr.Snapshot().Sampled) != 0 {
		t.Error("nil tracer not empty")
	}
	if hb.Uptime() != 0 {
		t.Error("nil hub uptime nonzero")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Add(2)
	r.Counter("a").Inc()
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Observe(0.25)
	snap := r.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a" || snap.Counters[1].Name != "b" {
		t.Errorf("counters = %+v, want sorted a,b", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Value != 1.5 {
		t.Errorf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Hists) != 1 || snap.Hists[0].Count != 1 || snap.Hists[0].P50 != 0.25 {
		t.Errorf("hists = %+v", snap.Hists)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("served_total", "scheme", "fully-client")).Add(3)
	r.Gauge("link_bw").Set(2e6)
	h := r.Histogram(Name("lat_seconds", "scheme", "server-ids"))
	h.Observe(0.010)
	h.Observe(0.020)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE served_total counter",
		`served_total{scheme="fully-client"} 3`,
		"# TYPE link_bw gauge",
		"link_bw 2e+06",
		"# TYPE lat_seconds summary",
		`lat_seconds{scheme="server-ids",quantile="0.5"}`,
		`lat_seconds{scheme="server-ids"}_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsMsgRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Gauge("g").Set(1.25)
	r.Histogram("h").Observe(0.5)
	snap := r.Snapshot()

	msg := ToStatsMsg(42, 1e6, snap)
	if err := msg.Validate(); err != nil {
		t.Fatalf("snapshot message invalid: %v", err)
	}
	back := SnapshotFromMsg(msg)
	if len(back.Counters) != 1 || back.Counters[0].Value != 7 {
		t.Errorf("counters = %+v", back.Counters)
	}
	if len(back.Gauges) != 1 || back.Gauges[0].Value != 1.25 {
		t.Errorf("gauges = %+v", back.Gauges)
	}
	if len(back.Hists) != 1 || back.Hists[0].Count != 1 || back.Hists[0].P50 != 0.5 {
		t.Errorf("hists = %+v", back.Hists)
	}
}

func TestStatsMsgSanitizesEmptyHist(t *testing.T) {
	// An empty histogram summarizes to NaN mean/min/max; the wire message
	// must still validate (NaN is a protocol error).
	r := NewRegistry()
	r.Histogram("empty")
	msg := ToStatsMsg(1, 0, r.Snapshot())
	if err := msg.Validate(); err != nil {
		t.Fatalf("empty-histogram snapshot invalid: %v", err)
	}
}
