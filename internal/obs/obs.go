// Package obs is the observability layer of the networked service: a
// metrics registry (counters, gauges, and internal/stats log-bucketed
// histograms), per-query spans carrying both wall-clock time and modeled
// energy/cycle attribution (span.go, energy.go), and export surfaces — a
// Prometheus-style text endpoint plus JSON traces over HTTP (http.go) and
// the in-protocol MsgStats snapshot served by internal/serve.
//
// The paper's contribution is an accounting exercise: split each query into
// client-compute, NIC, and server segments and attribute Joules and cycles
// to each (§4–§5). This package carries that attribution into the live
// system, so the partitioning planner's predictions can be compared against
// measured outcomes query by query instead of in aggregate.
//
// Hot-path design: instrumented code holds *Counter/*Gauge/*Histogram
// handles resolved once at setup, so the steady-state cost is an atomic add
// (counters, gauges) or a short mutex + O(1) bucket increment (histograms).
// Spans are pooled and sampled; a nil *Span, *Tracer, or *Hub is a no-op on
// every method, so call sites need no "is obs enabled" branches.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/stats"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates delta (CAS loop — gauges double as float accumulators,
// e.g. total modeled Joules per scheme).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a synchronized wrapper around the internal/stats log-bucketed
// histogram, safe for concurrent Observe from many request goroutines.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Record(x)
	h.mu.Unlock()
}

// HistSummary is the headline view of a histogram.
type HistSummary struct {
	Count                         uint64
	Mean, Min, Max, P50, P95, P99 float64
}

// Summary computes the headline quantiles under the lock.
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSummary{
		Count: uint64(h.h.Count()),
		Mean:  h.h.Mean(),
		Min:   h.h.Min(),
		Max:   h.h.Max(),
		P50:   h.h.P(0.50),
		P95:   h.h.P(0.95),
		P99:   h.h.P(0.99),
	}
}

// Registry is a named metric store. Lookups take a read lock; instrumented
// code resolves handles once and uses them lock-free afterwards.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil-safe: a
// nil registry returns a nil (no-op) handle.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use
// with the default 1µs-floor 2%-bucket layout.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{h: stats.NewLatencyHistogram()}
		r.hists[name] = h
	}
	return h
}

// Name composes a metric name with label pairs in Prometheus form:
// Name("queries_total", "scheme", "server-ids") →
// `queries_total{scheme="server-ids"}`. Pairs must come in key, value order.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// CounterValue, GaugeValue, and HistValue are snapshot rows.
type CounterValue struct {
	Name  string
	Value uint64
}

// GaugeValue is one gauge row.
type GaugeValue struct {
	Name  string
	Value float64
}

// HistValue is one histogram row.
type HistValue struct {
	Name string
	HistSummary
}

// Snapshot is a point-in-time copy of the registry, rows sorted by name.
type Snapshot struct {
	Counters []CounterValue
	Gauges   []GaugeValue
	Hists    []HistValue
}

// Snapshot copies every metric. Histogram summaries are computed per-metric
// under their own locks; the registry lock only guards the maps.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	counters := make([]CounterValue, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, CounterValue{Name: name, Value: c.Value()})
	}
	gauges := make([]GaugeValue, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	hists := make([]*Histogram, 0, len(r.hists))
	histNames := make([]string, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, h)
		histNames = append(histNames, name)
	}
	r.mu.RUnlock()

	snap := Snapshot{Counters: counters, Gauges: gauges}
	snap.Hists = make([]HistValue, len(hists))
	for i, h := range hists {
		snap.Hists[i] = HistValue{Name: histNames[i], HistSummary: h.Summary()}
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	return snap
}

// Hub bundles the registry, tracer, and energy model one process shares.
type Hub struct {
	Reg    *Registry
	Trace  *Tracer
	Energy EnergyModel
	start  time.Time
}

// NewHub builds a hub with a fresh registry, a default tracer (256-span
// ring, 1-in-16 sampling), and the default energy model.
func NewHub() *Hub {
	return &Hub{
		Reg:    NewRegistry(),
		Trace:  NewTracer(256, 16),
		Energy: DefaultEnergyModel(),
		start:  time.Now(),
	}
}

// Uptime returns the time since the hub was created.
func (h *Hub) Uptime() time.Duration {
	if h == nil {
		return 0
	}
	return time.Since(h.start)
}
