// http.go: the HTTP export surface mounted by cmd/mqserve's -obs flag:
// /metrics (Prometheus text), /traces (JSON span snapshot), and the
// standard /debug/pprof profiling endpoints — registered on a private mux,
// not http.DefaultServeMux, so importing this package never leaks handlers
// into other servers in the process.
package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves /metrics, /traces, and /debug/pprof for a hub.
func Handler(h *Hub) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, h.Reg.Snapshot())
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.Trace.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
