// energy.go: the attribution model that prices span stages in Joules and
// client-clock cycles. It reuses the paper's published constants — the
// Table 2 NIC state powers (internal/nic), the SimplePower-era client CPU
// draw (internal/energy), and the Table 3 clock rates (internal/cpu) — so a
// live trace decomposes exactly like the simulator's Figures: compute at
// (PClient + PSleep), transmit at PTx + the blocked core, receive at PRx +
// the blocked core, server wait at NIC idle + the blocked core.
package obs

import (
	"mobispatial/internal/cpu"
	"mobispatial/internal/energy"
	"mobispatial/internal/nic"
)

// EnergyModel prices wall-clock stage time into modeled client Joules and
// cycles.
type EnergyModel struct {
	// ClientHz converts client-side stage seconds into cycles.
	ClientHz float64
	// PClient is the client compute draw; PTx/PRx/PIdle/PSleep the NIC
	// state powers; PBlocked the core's draw while blocked on the NIC.
	PClient, PTx, PRx, PIdle, PSleep, PBlocked float64
}

// DefaultEnergyModel prices like the simulated Table 2–4 machines at 1 km
// range: the same constants client/planner.DefaultCostModel calibrates its
// predictions with, so predicted and measured Joules are commensurable.
func DefaultEnergyModel() EnergyModel {
	e := energy.DefaultParams()
	return EnergyModel{
		ClientHz: cpu.DefaultClientConfig().ClockHz,
		PClient:  0.2,
		PTx:      nic.TxPower1Km,
		PRx:      nic.RxPower,
		PIdle:    nic.IdlePower,
		PSleep:   nic.SleepPower,
		PBlocked: e.CPUSleepWatts,
	}
}

// Compute prices sec seconds of client computation with the NIC asleep —
// the fully-local stages (plan, index-walk, reply materialization).
func (m EnergyModel) Compute(sec float64) (joules, cycles float64) {
	return (m.PClient + m.PSleep) * sec, sec * m.ClientHz
}

// TxSeconds models the radio transmit time of a payload at the measured
// effective bandwidth (bits/s); 0 when the bandwidth is unknown.
func (m EnergyModel) TxSeconds(bytes int, bwBps float64) float64 {
	if bwBps <= 0 {
		return 0
	}
	return float64(bytes*8) / bwBps
}

// Tx prices transmit seconds: the amplifier plus the blocked core.
func (m EnergyModel) Tx(sec float64) (joules, cycles float64) {
	return (m.PTx + m.PBlocked) * sec, sec * m.ClientHz
}

// Rx prices receive seconds.
func (m EnergyModel) Rx(sec float64) (joules, cycles float64) {
	return (m.PRx + m.PBlocked) * sec, sec * m.ClientHz
}

// Wait prices seconds blocked on the server: NIC in carrier-sense idle, the
// core in its low-power blocked mode (§5.2).
func (m EnergyModel) Wait(sec float64) (joules, cycles float64) {
	return (m.PIdle + m.PBlocked) * sec, sec * m.ClientHz
}

// WakeupJoules prices one NIC sleep-to-active transition: SleepExitLatency
// spent at idle power before the radio can move a bit (internal/nic models
// the same charge on the simulated device). This is the fixed per-exchange
// cost that batching amortizes — it is paid per wire exchange, not per
// query.
func (m EnergyModel) WakeupJoules() float64 {
	return m.PIdle * nic.SleepExitLatency
}

// NICExchangeJoules prices a traffic aggregate the way the NIC experiences
// it: transmit and receive time at the measured bandwidth, plus one wakeup
// transition per exchange. With batching, exchanges < queries, so the same
// bytes cost fewer transitions — the observable counterpart of the paper's
// energy argument for coarse work partitioning. Returns 0 transfer cost when
// the bandwidth is unknown (the wakeups are still charged).
func (m EnergyModel) NICExchangeJoules(txBytes, rxBytes, exchanges int, bwBps float64) float64 {
	j := float64(exchanges) * m.WakeupJoules()
	j += m.PTx * m.TxSeconds(txBytes, bwBps)
	j += m.PRx * m.TxSeconds(rxBytes, bwBps)
	return j
}
