package obs

import (
	"testing"
)

// The hot paths: what one instrumented request touches. Counter/gauge ops
// are atomic adds, histogram observes take one short mutex, spans add a
// clock read per stage transition.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1.0)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00042)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
		}
	})
}

func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("hit")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("hit")
	}
}

func BenchmarkSpanLifecycle(b *testing.B) {
	tr := NewTracer(256, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("range")
		sp.SetScheme("server-ids")
		sp.Begin(StagePlan)
		sp.Begin(StageIndexWalk)
		sp.Attribute(StageIndexWalk, 1e-4, 1e3)
		sp.Finish()
	}
}

func BenchmarkSpanLifecycleNil(b *testing.B) {
	// The disabled-observability path: every call no-ops on nil.
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start("range")
		sp.SetScheme("server-ids")
		sp.Begin(StagePlan)
		sp.Begin(StageIndexWalk)
		sp.Attribute(StageIndexWalk, 1e-4, 1e3)
		sp.Finish()
	}
}
