package pmrquad

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
)

func randSegments(n int, seed int64) []geom.Segment {
	rng := rand.New(rand.NewSource(seed))
	segs := make([]geom.Segment, n)
	for i := range segs {
		a := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		segs[i] = geom.Segment{
			A: a,
			B: geom.Point{X: a.X + rng.Float64()*20 - 10, Y: a.Y + rng.Float64()*20 - 10},
		}
	}
	return segs
}

var testBounds = geom.Rect{Min: geom.Point{X: -20, Y: -20}, Max: geom.Point{X: 1020, Y: 1020}}

func buildTest(t testing.TB, segs []geom.Segment, cfg Config) *Tree {
	t.Helper()
	tr, err := Build(segs, testBounds, cfg, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, geom.Rect{}, Config{}, ops.Null{}); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := Build(nil, testBounds, Config{SplitThreshold: -1}, ops.Null{}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := buildTest(t, nil, Config{})
	if tr.Len() != 0 {
		t.Fatal("empty tree has items")
	}
	if got := tr.Search(testBounds, ops.Null{}); len(got) != 0 {
		t.Fatal("empty tree returned results")
	}
	if _, _, ok := tr.Nearest(geom.Point{}, nil, ops.Null{}); ok {
		t.Fatal("empty tree found a neighbor")
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	segs := randSegments(3000, 3)
	tr := buildTest(t, segs, Config{})
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 100; q++ {
		w := geom.Rect{Min: geom.Point{X: rng.Float64() * 950, Y: rng.Float64() * 950}}
		w.Max = geom.Point{X: w.Min.X + rng.Float64()*80, Y: w.Min.Y + rng.Float64()*80}
		got := tr.Search(w, ops.Null{})
		var want []uint32
		for i, s := range segs {
			if w.Intersects(s.MBR()) {
				want = append(want, uint32(i))
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d ids, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: id mismatch at %d", q, i)
			}
		}
	}
}

func TestNoDuplicateResults(t *testing.T) {
	// Segments span many quadrants; results must still be unique.
	segs := []geom.Segment{
		{A: geom.Point{X: 0, Y: 500}, B: geom.Point{X: 1000, Y: 500}}, // crosses everything
		{A: geom.Point{X: 500, Y: 0}, B: geom.Point{X: 500, Y: 1000}},
	}
	segs = append(segs, randSegments(500, 5)...)
	tr := buildTest(t, segs, Config{SplitThreshold: 4})
	got := tr.Search(geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 1000, Y: 1000}}, ops.Null{})
	seen := map[uint32]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d in results", id)
		}
		seen[id] = true
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	segs := randSegments(2000, 7)
	tr := buildTest(t, segs, Config{})
	rng := rand.New(rand.NewSource(8))
	for q := 0; q < 100; q++ {
		p := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		df := func(id uint32) float64 { return segs[id].DistToPoint(p) }
		_, d, ok := tr.Nearest(p, df, ops.Null{})
		if !ok {
			t.Fatal("Nearest found nothing")
		}
		best := math.Inf(1)
		for _, s := range segs {
			if dd := s.DistToPoint(p); dd < best {
				best = dd
			}
		}
		if math.Abs(d-best) > 1e-9 {
			t.Fatalf("query %d: NN dist %g, brute force %g", q, d, best)
		}
	}
}

func TestSplitRespectsThresholdAndDepth(t *testing.T) {
	segs := randSegments(5000, 9)
	tr := buildTest(t, segs, Config{SplitThreshold: 8, MaxDepth: 10})
	if tr.MaxDepthUsed() > 10 {
		t.Fatalf("depth %d exceeds MaxDepth", tr.MaxDepthUsed())
	}
	// Leaves above threshold are allowed only at max depth.
	for i := range tr.nodes {
		n := &tr.nodes[i]
		if n.children == nil && len(n.items) > 8+1 && n.depth < 10 {
			t.Fatalf("leaf %d holds %d items at depth %d", i, len(n.items), n.depth)
		}
	}
}

func TestInstrumentationAndSize(t *testing.T) {
	segs := randSegments(1000, 10)
	var rec ops.Counts
	tr, err := Build(segs, testBounds, Config{}, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ops[ops.OpIndexBuildEntry] < int64(len(segs)) {
		t.Fatal("build entries not recorded")
	}
	if tr.IndexBytes() <= 0 || tr.NodeCount() <= 0 {
		t.Fatal("size accounting broken")
	}
	var q ops.Counts
	tr.Search(geom.Rect{Min: geom.Point{X: 100, Y: 100}, Max: geom.Point{X: 400, Y: 400}}, &q)
	if q.Ops[ops.OpNodeVisit] == 0 || q.LoadBytes == 0 {
		t.Fatal("search emitted no trace")
	}
}

func TestSearchPointFindsOwner(t *testing.T) {
	segs := randSegments(1500, 12)
	tr := buildTest(t, segs, Config{})
	for i := 0; i < 100; i++ {
		id := uint32(i * 13 % len(segs))
		hits := tr.SearchPoint(segs[id].A, ops.Null{})
		found := false
		for _, h := range hits {
			if h == id {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("endpoint of segment %d not found by point search", id)
		}
	}
}

func BenchmarkBuild10k(b *testing.B) {
	segs := randSegments(10000, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(segs, testBounds, Config{}, ops.Null{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	segs := randSegments(50000, 21)
	tr, err := Build(segs, testBounds, Config{}, ops.Null{})
	if err != nil {
		b.Fatal(err)
	}
	w := geom.Rect{Min: geom.Point{X: 400, Y: 400}, Max: geom.Point{X: 450, Y: 450}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Search(w, ops.Null{})
	}
}
