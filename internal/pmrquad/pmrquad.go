// Package pmrquad implements the PMR quadtree of Nelson and Samet — one of
// the three spatial access methods compared by the paper's reference [2]
// ("Analyzing Energy Behavior of Spatial Access Methods for Memory-Resident
// Data", VLDB 2001), whose packed-R-tree representative this repository's
// main experiments use. The PMR quadtree is included so the index-comparison
// bench can reproduce that reference point.
//
// A PMR quadtree over line segments recursively partitions the space into
// quadrants. A segment is stored in every leaf whose region it intersects.
// On insertion, a leaf whose occupancy exceeds the splitting threshold is
// split exactly once (not recursively) — the PMR probabilistic splitting
// rule — up to a maximum depth. Because a segment can live in several
// leaves, queries deduplicate results before returning them.
//
// Like the packed R-tree, every node has a simulated byte address and all
// traversals emit their work to an ops.Recorder.
package pmrquad

import (
	"fmt"
	"math"
	"sort"

	"mobispatial/internal/geom"
	"mobispatial/internal/index"
	"mobispatial/internal/ops"
)

// Config controls the quadtree shape and its byte-accounting layout.
type Config struct {
	// SplitThreshold is the PMR splitting threshold: a leaf exceeding this
	// many segments is split once on insertion. Nelson and Samet found
	// small thresholds (4–8) effective; the default is 8.
	SplitThreshold int
	// MaxDepth bounds the recursion so collinear bundles cannot split
	// forever. Default 16.
	MaxDepth int
	// BaseAddr is the simulated address of the node arena; defaults to
	// ops.IndexBase (the structure replaces the R-tree in the client's
	// index region when used).
	BaseAddr uint64
}

func (c *Config) fill() {
	if c.SplitThreshold == 0 {
		c.SplitThreshold = 8
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 16
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = ops.IndexBase
	}
}

// Byte-layout constants: an internal node holds four children pointers plus
// a header; a leaf holds a header plus one 20-byte entry (MBR + id) per
// stored segment, matching the R-tree's entry size.
const (
	nodeHeaderBytes = 8
	childPtrBytes   = 4
	entryBytes      = 20
	internalBytes   = nodeHeaderBytes + 4*childPtrBytes
)

// node is one quadtree cell. Leaves have children == nil.
type node struct {
	region   geom.Rect
	addr     uint64
	children []int32 // 4 child node indices, nil for leaves
	items    []item  // leaf payload
	depth    int
}

type item struct {
	seg geom.Segment
	id  uint32
}

// Tree is a PMR quadtree over line segments.
type Tree struct {
	cfg    Config
	nodes  []node
	nitems int
	bytes  int // running byte size
	// nextAddr is the arena allocation cursor.
	nextAddr uint64
}

// The PMR quadtree satisfies the shared access-method contract.
var _ index.Index = (*Tree)(nil)

// Build inserts all segments into a fresh PMR quadtree covering bounds. The
// ids are the segment positions in segs. rec receives the build work.
func Build(segs []geom.Segment, bounds geom.Rect, cfg Config, rec ops.Recorder) (*Tree, error) {
	cfg.fill()
	if cfg.SplitThreshold < 1 {
		return nil, fmt.Errorf("pmrquad: split threshold %d", cfg.SplitThreshold)
	}
	if bounds.IsEmpty() || bounds.Area() <= 0 {
		return nil, fmt.Errorf("pmrquad: bounds %v have no area", bounds)
	}
	t := &Tree{cfg: cfg, nextAddr: cfg.BaseAddr}
	t.newNode(bounds, 0)
	for i, s := range segs {
		t.insert(0, s, uint32(i), rec)
		t.nitems++
	}
	return t, nil
}

// newNode allocates a leaf covering region and returns its index.
func (t *Tree) newNode(region geom.Rect, depth int) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{
		region: region,
		addr:   t.nextAddr,
		depth:  depth,
	})
	t.nextAddr += internalBytes // header reserved up front
	t.bytes += internalBytes
	return idx
}

// insert places the segment into every intersecting leaf under node ni,
// applying the PMR one-shot splitting rule.
func (t *Tree) insert(ni int32, s geom.Segment, id uint32, rec ops.Recorder) {
	rec.Op(ops.OpNodeVisit, 1)
	rec.Load(t.nodes[ni].addr, nodeHeaderBytes)
	// Copy the children slice header before recursing: recursive inserts
	// can grow t.nodes and move the backing array out from under a held
	// pointer.
	if children := t.nodes[ni].children; children != nil {
		for _, ci := range children {
			rec.Op(ops.OpMBRTest, 1)
			if s.IntersectsRect(t.nodes[ci].region) {
				t.insert(ci, s, id, rec)
			}
		}
		return
	}
	// Leaf: store the segment.
	n := &t.nodes[ni]
	n.items = append(n.items, item{seg: s, id: id})
	t.bytes += entryBytes
	rec.Op(ops.OpIndexBuildEntry, 1)
	rec.Store(n.addr+nodeHeaderBytes+uint64(len(n.items)-1)*entryBytes, entryBytes)
	// PMR rule: split once if over threshold and depth allows.
	if len(n.items) > t.cfg.SplitThreshold && n.depth < t.cfg.MaxDepth {
		t.split(ni, rec)
	}
}

// split turns leaf ni into an internal node with four children and
// redistributes its items (each into every intersecting child).
func (t *Tree) split(ni int32, rec ops.Recorder) {
	// Note: appending children may grow t.nodes, so copy what we need
	// before taking pointers.
	region := t.nodes[ni].region
	depth := t.nodes[ni].depth
	items := t.nodes[ni].items
	c := region.Center()
	quads := [4]geom.Rect{
		{Min: region.Min, Max: c},
		{Min: geom.Point{X: c.X, Y: region.Min.Y}, Max: geom.Point{X: region.Max.X, Y: c.Y}},
		{Min: geom.Point{X: region.Min.X, Y: c.Y}, Max: geom.Point{X: c.X, Y: region.Max.Y}},
		{Min: c, Max: region.Max},
	}
	children := make([]int32, 4)
	for i, q := range quads {
		children[i] = t.newNode(q, depth+1)
	}
	t.nodes[ni].children = children
	t.nodes[ni].items = nil
	t.bytes -= len(items) * entryBytes
	for _, it := range items {
		for _, ci := range children {
			rec.Op(ops.OpMBRTest, 1)
			if it.seg.IntersectsRect(t.nodes[ci].region) {
				child := &t.nodes[ci]
				child.items = append(child.items, it)
				t.bytes += entryBytes
				rec.Store(child.addr+nodeHeaderBytes+uint64(len(child.items)-1)*entryBytes, entryBytes)
			}
		}
	}
}

// Len returns the number of distinct indexed segments.
func (t *Tree) Len() int { return t.nitems }

// IndexBytes returns the structure's byte size (node headers, child
// pointers, and leaf entries).
func (t *Tree) IndexBytes() int { return t.bytes }

// NodeCount returns the number of quadtree cells.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// MaxDepthUsed returns the deepest cell level in use.
func (t *Tree) MaxDepthUsed() int {
	d := 0
	for i := range t.nodes {
		if t.nodes[i].depth > d {
			d = t.nodes[i].depth
		}
	}
	return d
}

// Search returns the ids of all segments whose MBR intersects the window.
// To match the R-tree's filtering contract (candidates by MBR), leaf entries
// are tested by MBR; duplicates from multi-leaf storage are removed.
func (t *Tree) Search(window geom.Rect, rec ops.Recorder) []uint32 {
	if t.nitems == 0 {
		return nil
	}
	seen := make(map[uint32]bool)
	var out []uint32
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.nodes[ni]
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(n.addr, nodeHeaderBytes)
		if n.children != nil {
			for _, ci := range n.children {
				rec.Op(ops.OpMBRTest, 1)
				if window.Intersects(t.nodes[ci].region) {
					walk(ci)
				}
			}
			return
		}
		for i := range n.items {
			rec.Load(n.addr+nodeHeaderBytes+uint64(i)*entryBytes, entryBytes)
			rec.Op(ops.OpMBRTest, 1)
			if !window.Intersects(n.items[i].seg.MBR()) {
				continue
			}
			// Dedup check costs a hash probe — charge a result append.
			if seen[n.items[i].id] {
				continue
			}
			seen[n.items[i].id] = true
			rec.Op(ops.OpResultAppend, 1)
			rec.Store(ops.ScratchBase+uint64(len(out))*4, 4)
			out = append(out, n.items[i].id)
		}
	}
	walk(0)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SearchPoint returns the ids of all segments whose MBR contains p.
func (t *Tree) SearchPoint(p geom.Point, rec ops.Recorder) []uint32 {
	return t.Search(geom.Rect{Min: p, Max: p}, rec)
}

// Nearest returns the segment nearest to p, using best-first traversal over
// cell regions ordered by MINDIST with exact distances from dist.
func (t *Tree) Nearest(p geom.Point, dist index.DistFunc, rec ops.Recorder) (uint32, float64, bool) {
	if t.nitems == 0 {
		return 0, 0, false
	}
	best := math.Inf(1)
	bestID := uint32(0)
	found := false
	evaluated := make(map[uint32]bool)
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.nodes[ni]
		rec.Op(ops.OpNodeVisit, 1)
		rec.Load(n.addr, nodeHeaderBytes)
		if n.children != nil {
			// Visit children in MINDIST order; prune against best.
			type cand struct {
				d  float64
				ci int32
			}
			cands := make([]cand, 0, 4)
			for _, ci := range n.children {
				rec.Op(ops.OpDistCalc, 1)
				cands = append(cands, cand{t.nodes[ci].region.MinDist(p), ci})
			}
			sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
			rec.Op(ops.OpHeapOp, len(cands))
			for _, c := range cands {
				if c.d > best {
					break
				}
				walk(c.ci)
			}
			return
		}
		for i := range n.items {
			rec.Load(n.addr+nodeHeaderBytes+uint64(i)*entryBytes, entryBytes)
			rec.Op(ops.OpDistCalc, 1)
			if n.items[i].seg.MBR().MinDist(p) > best {
				continue
			}
			id := n.items[i].id
			if evaluated[id] {
				continue
			}
			evaluated[id] = true
			d := dist(id)
			if d < best || !found {
				best = d
				bestID = id
				found = true
			}
		}
	}
	walk(0)
	return bestID, best, found
}
