// Package serve is the real networked counterpart of the paper's simulated
// server: a concurrent TCP service answering point, range, and (k-)NN
// queries — and Fig. 2 index shipments — over the length-prefixed binary
// protocol of internal/proto, against one shared packed R-tree through an
// internal/parallel pool.
//
// Concurrency model:
//
//   - one goroutine per connection reads frames;
//   - each admitted request runs in its own goroutine, so a connection can
//     pipeline requests (responses carry the request id and may return out
//     of order);
//   - admission control bounds the in-flight requests across all
//     connections: when the server is saturated the reader blocks — TCP
//     backpressure — for up to AdmitTimeout before failing the request with
//     CodeOverload;
//   - each request carries a deadline (client-requested, capped by the
//     server); work that finishes past it is answered with CodeDeadline;
//   - Shutdown drains in-flight requests, then closes connections.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
)

// DefaultPointEps mirrors core.PointEps: the point-query incidence tolerance
// in map units.
const DefaultPointEps = 2.0

// Config parameterizes a Server.
type Config struct {
	// Pool executes the queries; required.
	Pool *parallel.Pool
	// Master enables MsgShipmentReq (Fig. 2 subset extraction); nil
	// disables shipments with CodeUnsupported.
	Master *rtree.Tree
	// MaxInFlight bounds concurrently executing requests across all
	// connections; defaults to 4× the pool width.
	MaxInFlight int
	// AdmitTimeout is how long a request may wait for an in-flight slot
	// before it is refused with CodeOverload; defaults to 100ms.
	AdmitTimeout time.Duration
	// RequestTimeout caps one request's server-side time (admission wait
	// included); clients may ask for less, never more. Defaults to 5s.
	RequestTimeout time.Duration
	// WriteTimeout bounds one response write; defaults to 10s.
	WriteTimeout time.Duration
	// PointEps is the default point-query tolerance; DefaultPointEps when 0.
	PointEps float64
	// MaxKNN caps the k of k-NN queries; defaults to 1024.
	MaxKNN int
	// MaxShipmentBudget caps a shipment request's byte budget; defaults to
	// 64 MB (a larger budget is a protocol error).
	MaxShipmentBudget int
	// Obs enables observability: per-kind execution histograms, sampled
	// spans, and the MsgStatsReq snapshot carry this hub's metrics. Nil
	// disables instrumentation (the snapshot then carries only the core
	// counters).
	Obs *obs.Hub

	// testDelay, when set, stalls every query execution — tests use it to
	// fill the admission window and overrun deadlines deterministically.
	testDelay time.Duration
}

func (c *Config) fill() error {
	if c.Pool == nil {
		return fmt.Errorf("serve: Config.Pool is required")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Pool.Workers()
	}
	if c.AdmitTimeout <= 0 {
		c.AdmitTimeout = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.PointEps <= 0 {
		c.PointEps = DefaultPointEps
	}
	if c.MaxKNN <= 0 {
		c.MaxKNN = 1024
	}
	if c.MaxShipmentBudget <= 0 {
		c.MaxShipmentBudget = 64 << 20
	}
	return nil
}

// Stats are cumulative server counters, safe to read at any time.
type Stats struct {
	// Conns is the number of connections accepted.
	Conns uint64
	// Served counts successfully answered requests (pings excluded).
	Served uint64
	// Overloads counts requests refused by admission control.
	Overloads uint64
	// Deadlines counts requests that finished past their deadline.
	Deadlines uint64
	// Errors counts bad requests and internal failures.
	Errors uint64
	// Shipments counts served shipment requests (also included in Served).
	Shipments uint64
}

// Server is a networked spatial-query server.
type Server struct {
	cfg   Config
	start time.Time
	// sem holds one token per in-flight request.
	sem chan struct{}

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	connWG sync.WaitGroup // one per live connection

	nConns, nServed, nOverload, nDeadline, nErrors, nShipments atomic.Uint64

	metrics serveMetrics
}

// serveMetrics holds the obs handles the hot path uses, resolved once at New
// so request goroutines never touch the registry maps. All handles are
// nil (no-op) when Config.Obs is nil.
type serveMetrics struct {
	// execHist[kind][mode] is the execution-time histogram of one query
	// shape; shipHist covers shipments, admitHist the admission wait,
	// writeHist the response serialization + write.
	execHist  [3][3]*obs.Histogram
	shipHist  *obs.Histogram
	admitHist *obs.Histogram
	writeHist *obs.Histogram
	rxBytes   *obs.Counter
	txBytes   *obs.Counter
	// Registry mirrors of the core Stats counters, so /metrics sees them
	// without reaching into the Server.
	conns, served, overloads, deadlines, errors, shipments *obs.Counter
}

var kindNames = [3]string{"point", "range", "nn"}

func newServeMetrics(h *obs.Hub) serveMetrics {
	var m serveMetrics
	if h == nil {
		return m
	}
	for k, kindName := range kindNames {
		for mo, mode := range [3]proto.Mode{proto.ModeData, proto.ModeIDs, proto.ModeFilter} {
			m.execHist[k][mo] = h.Reg.Histogram(
				obs.Name("serve_exec_seconds", "kind", kindName, "mode", mode.String()))
		}
	}
	m.shipHist = h.Reg.Histogram("serve_shipment_seconds")
	m.admitHist = h.Reg.Histogram("serve_admit_wait_seconds")
	m.writeHist = h.Reg.Histogram("serve_write_seconds")
	m.rxBytes = h.Reg.Counter("serve_rx_bytes_total")
	m.txBytes = h.Reg.Counter("serve_tx_bytes_total")
	m.conns = h.Reg.Counter("serve_conns_total")
	m.served = h.Reg.Counter("serve_served_total")
	m.overloads = h.Reg.Counter("serve_overloads_total")
	m.deadlines = h.Reg.Counter("serve_deadlines_total")
	m.errors = h.Reg.Counter("serve_errors_total")
	m.shipments = h.Reg.Counter("serve_shipments_total")
	return m
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:     cfg,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		conns:   make(map[net.Conn]struct{}),
		metrics: newServeMetrics(cfg.Obs),
	}, nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:     s.nConns.Load(),
		Served:    s.nServed.Load(),
		Overloads: s.nOverload.Load(),
		Deadlines: s.nDeadline.Load(),
		Errors:    s.nErrors.Load(),
		Shipments: s.nShipments.Load(),
	}
}

// Serve accepts connections on lis until Shutdown or Close. It returns nil
// after a clean shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("serve: server is shut down")
	}
	if s.lis != nil {
		s.mu.Unlock()
		return fmt.Errorf("serve: Serve called twice")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.shutdown
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.nConns.Add(1)
		s.metrics.conns.Inc()
		go s.serveConn(nc)
	}
}

// ListenAndServe listens on addr and serves until shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Shutdown gracefully stops the server: no new connections or requests are
// accepted, in-flight requests drain and their responses are written, then
// connections close. It returns when everything has drained or timeout (≤ 0
// means wait forever) has passed.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.shutdown = true
	lis := s.lis
	// Poke every reader out of its blocking Read so it notices shutdown.
	for nc := range s.conns {
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		s.closeAllConns()
		return fmt.Errorf("serve: shutdown timed out after %v", timeout)
	}
}

// Close stops the server immediately, dropping in-flight work.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.closeAllConns()
	s.connWG.Wait()
	return nil
}

func (s *Server) closeAllConns() {
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
}

func (s *Server) inShutdown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// conn is the per-connection state.
type conn struct {
	srv *Server
	nc  net.Conn
	// wmu serializes response writes from the request goroutines.
	wmu sync.Mutex
	// pending counts this connection's in-flight request goroutines.
	pending sync.WaitGroup
}

// readPollInterval is how often a blocked reader rechecks for shutdown.
const readPollInterval = time.Second

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{srv: s, nc: nc}
	defer func() {
		c.pending.Wait() // flush in-flight responses before closing
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connWG.Done()
	}()

	for {
		// The deadline is armed before the shutdown check: if Shutdown's
		// poke (SetReadDeadline(now)) lands between the check and a
		// later arm, this ordering guarantees the poke wins and the read
		// returns immediately — otherwise an idle connection could stall
		// the drain for a full readPollInterval.
		nc.SetReadDeadline(time.Now().Add(readPollInterval))
		if s.inShutdown() {
			return
		}
		msg, n, err := proto.ReadMessage(nc)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue // poll tick: recheck shutdown
			}
			return // EOF, peer reset, or a protocol error: drop the conn
		}
		arrived := time.Now()
		s.metrics.rxBytes.Add(uint64(n))

		switch m := msg.(type) {
		case *proto.PingMsg:
			// Pings bypass admission: they measure the link, not the server.
			c.write(m)
		case *proto.StatsReqMsg:
			// Snapshots bypass admission too: observability must stay
			// available when the server is saturated.
			c.write(s.statsSnapshot(m.ID))
		case *proto.QueryMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.ShipmentReqMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		default:
			s.nErrors.Add(1)
			s.metrics.errors.Inc()
			c.write(&proto.ErrorMsg{ID: msg.RequestID(), Code: proto.CodeBadRequest,
				Text: fmt.Sprintf("unexpected %v message", msg.Type())})
		}
	}
}

// dispatch admits req and runs it in its own goroutine — the pipelining
// point: the reader immediately returns to the next frame.
func (c *conn) dispatch(req proto.Message, arrived time.Time, timeoutMicros uint32) {
	s := c.srv
	timeout := s.cfg.RequestTimeout
	if t := time.Duration(timeoutMicros) * time.Microsecond; t > 0 && t < timeout {
		timeout = t
	}
	deadline := arrived.Add(timeout)

	// Admission control. Blocking here stalls this connection's reader —
	// deliberate backpressure — but never past AdmitTimeout.
	select {
	case s.sem <- struct{}{}:
	default:
		admitWait := s.cfg.AdmitTimeout
		if rest := time.Until(deadline); rest < admitWait {
			admitWait = rest
		}
		timer := time.NewTimer(admitWait)
		select {
		case s.sem <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			s.nOverload.Add(1)
			s.metrics.overloads.Inc()
			c.write(&proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeOverload,
				Text: "admission queue full"})
			return
		}
	}
	admitted := time.Now()
	s.metrics.admitHist.Observe(admitted.Sub(arrived).Seconds())

	c.pending.Add(1)
	go func() {
		defer func() {
			<-s.sem
			c.pending.Done()
		}()
		var sp *obs.Span
		if h := s.cfg.Obs; h != nil {
			sp = h.Trace.Start(reqKind(req))
		}
		sp.Lap(obs.StageParse, admitted.Sub(arrived).Seconds())
		sp.Begin(obs.StageIndexWalk)
		execStart := time.Now()
		resp := s.execute(req)
		execSec := time.Since(execStart).Seconds()
		s.observeExec(req, execSec)
		if time.Now().After(deadline) {
			s.nDeadline.Add(1)
			s.metrics.deadlines.Inc()
			resp = &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeDeadline,
				Text: fmt.Sprintf("request exceeded %v deadline", timeout)}
		}
		if _, ok := resp.(*proto.ErrorMsg); ok {
			if resp.(*proto.ErrorMsg).Code != proto.CodeDeadline {
				s.nErrors.Add(1)
				s.metrics.errors.Inc()
			}
			sp.SetErr()
		} else {
			s.nServed.Add(1)
			s.metrics.served.Inc()
		}
		sp.Begin(obs.StageSerialize)
		writeStart := time.Now()
		c.write(resp)
		s.metrics.writeHist.Observe(time.Since(writeStart).Seconds())
		sp.Finish()
	}()
}

// reqKind labels a request for spans and histograms.
func reqKind(req proto.Message) string {
	switch m := req.(type) {
	case *proto.QueryMsg:
		if int(m.Kind) < len(kindNames) {
			return kindNames[m.Kind]
		}
	case *proto.ShipmentReqMsg:
		return "shipment"
	}
	return "other"
}

// observeExec records one execution time into the matching histogram.
func (s *Server) observeExec(req proto.Message, sec float64) {
	switch m := req.(type) {
	case *proto.QueryMsg:
		if int(m.Kind) < 3 && int(m.Mode) < 3 {
			s.metrics.execHist[m.Kind][m.Mode].Observe(sec)
		}
	case *proto.ShipmentReqMsg:
		s.metrics.shipHist.Observe(sec)
	}
}

// write sends one response frame; write errors drop the connection (the
// reader will notice on its next poll).
func (c *conn) write(m proto.Message) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	n, err := proto.WriteMessage(c.nc, m)
	c.srv.metrics.txBytes.Add(uint64(n))
	if err != nil {
		c.nc.Close()
	}
}

// statsSnapshot builds the in-protocol stats reply. With obs enabled the
// registry snapshot already mirrors the core counters; with obs disabled the
// core counters are synthesized from the Server's atomics, so the snapshot
// is never empty.
func (s *Server) statsSnapshot(id uint32) *proto.StatsMsg {
	uptime := uint64(time.Since(s.start).Microseconds())
	if h := s.cfg.Obs; h != nil {
		return obs.ToStatsMsg(id, uptime, h.Reg.Snapshot())
	}
	st := s.Stats()
	return obs.ToStatsMsg(id, uptime, obs.Snapshot{Counters: []obs.CounterValue{
		{Name: "serve_conns_total", Value: st.Conns},
		{Name: "serve_deadlines_total", Value: st.Deadlines},
		{Name: "serve_errors_total", Value: st.Errors},
		{Name: "serve_overloads_total", Value: st.Overloads},
		{Name: "serve_served_total", Value: st.Served},
		{Name: "serve_shipments_total", Value: st.Shipments},
	}})
}

// execute runs one admitted request and builds its response message.
func (s *Server) execute(req proto.Message) proto.Message {
	if s.cfg.testDelay > 0 {
		time.Sleep(s.cfg.testDelay)
	}
	switch m := req.(type) {
	case *proto.QueryMsg:
		return s.executeQuery(m)
	case *proto.ShipmentReqMsg:
		return s.executeShipment(m)
	}
	return &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeInternal, Text: "unroutable message"}
}

func (s *Server) executeQuery(q *proto.QueryMsg) proto.Message {
	eps := q.Eps
	if eps <= 0 {
		eps = s.cfg.PointEps
	}
	pool := s.cfg.Pool

	var ids []uint32
	switch q.Kind {
	case proto.KindPoint:
		if q.Mode == proto.ModeFilter {
			ids = pool.FilterPoint(q.Point)
		} else {
			ids = pool.Point(q.Point, eps)
		}
	case proto.KindRange:
		if q.Mode == proto.ModeFilter {
			ids = pool.FilterRange(q.Window)
		} else {
			ids = pool.Range(q.Window)
		}
	case proto.KindNN:
		k := int(q.K)
		if k > s.cfg.MaxKNN {
			return &proto.ErrorMsg{ID: q.ID, Code: proto.CodeBadRequest,
				Text: fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxKNN)}
		}
		if k > 1 {
			neighbors, ok := pool.KNearest(q.Point, k)
			if !ok {
				return &proto.ErrorMsg{ID: q.ID, Code: proto.CodeUnsupported,
					Text: "access method does not support k-NN"}
			}
			for _, nb := range neighbors {
				ids = append(ids, nb.ID)
			}
		} else if nn := pool.Nearest(q.Point); nn.OK {
			ids = append(ids, nn.ID)
		}
	}

	if q.Mode == proto.ModeData {
		ds := pool.Dataset()
		recs := make([]proto.Record, len(ids))
		for i, id := range ids {
			recs[i] = proto.Record{ID: id, Seg: ds.Seg(id)}
		}
		return &proto.DataListMsg{ID: q.ID, Records: recs}
	}
	return &proto.IDListMsg{ID: q.ID, IDs: ids}
}

func (s *Server) executeShipment(m *proto.ShipmentReqMsg) proto.Message {
	if s.cfg.Master == nil {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeUnsupported,
			Text: "server has no master index for shipments"}
	}
	if int(m.BudgetBytes) > s.cfg.MaxShipmentBudget {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeBadRequest,
			Text: fmt.Sprintf("budget %d exceeds limit %d", m.BudgetBytes, s.cfg.MaxShipmentBudget)}
	}
	window := m.Window
	if window.IsEmpty() {
		// An empty window centers the shipment on the dataset.
		c := s.cfg.Master.Bounds().Center()
		window = geom.Rect{Min: c, Max: c}
	}
	ship, err := s.cfg.Master.ExtractSubset(window, rtree.Budget{
		Bytes:       int(m.BudgetBytes),
		RecordBytes: int(m.RecordBytes),
	}, ops.Null{})
	if err != nil {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeBadRequest, Text: err.Error()}
	}
	ds := s.cfg.Pool.Dataset()
	recs := make([]proto.Record, len(ship.Items))
	for i, it := range ship.Items {
		recs[i] = proto.Record{ID: it.ID, Seg: ds.Seg(it.ID)}
	}
	s.nShipments.Add(1)
	s.metrics.shipments.Inc()
	return &proto.ShipmentMsg{ID: m.ID, Coverage: ship.Coverage, Records: recs}
}
