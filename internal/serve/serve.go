// Package serve is the real networked counterpart of the paper's simulated
// server: a concurrent TCP service answering point, range, and (k-)NN
// queries — and Fig. 2 index shipments — over the length-prefixed binary
// protocol of internal/proto, against one shared packed R-tree through an
// internal/parallel pool.
//
// Concurrency model:
//
//   - one goroutine per connection reads frames;
//   - each admitted request runs in its own goroutine, so a connection can
//     pipeline requests (responses carry the request id and may return out
//     of order);
//   - admission control bounds the in-flight requests across all
//     connections: when the server is saturated the reader blocks — TCP
//     backpressure — for up to AdmitTimeout before failing the request with
//     CodeOverload;
//   - each request carries a deadline (client-requested, capped by the
//     server); work that finishes past it is answered with CodeDeadline;
//   - Shutdown drains in-flight requests, then closes connections.
package serve

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/qcache"
	"mobispatial/internal/rtree"
)

// DefaultPointEps mirrors core.PointEps: the point-query incidence tolerance
// in map units.
const DefaultPointEps = 2.0

// Executor is the query-execution engine a Server drives: the append-first
// query surface shared by *parallel.Pool (one monolithic index, parallelism
// across requests only) and *shard.Pool (Hilbert-sharded scatter-gather,
// parallelism inside each request too). Every method must be safe for any
// number of concurrent callers, and the append methods must honor the
// zero-allocation contract: write into dst's spare capacity, return the
// extended slice. Workers is the engine's concurrency width — the server
// sizes its admission window as a multiple of it.
type Executor interface {
	Workers() int
	Dataset() *dataset.Dataset
	FilterRangeAppend(dst []uint32, w geom.Rect) []uint32
	FilterPointAppend(dst []uint32, pt geom.Point) []uint32
	RangeAppend(dst []uint32, w geom.Rect) []uint32
	PointAppend(dst []uint32, pt geom.Point, eps float64) []uint32
	NearestWith(pt geom.Point, sc *parallel.Scratch) parallel.NearestResult
	KNearestAppend(dst []rtree.Neighbor, pt geom.Point, k int, sc *parallel.Scratch) ([]rtree.Neighbor, bool)
}

// DeadlineExecutor is the optional fallible query surface a distributed
// executor (internal/router) adds to Executor. Local pools never fail and
// never block on a peer, so Executor's methods return no errors and take no
// deadlines; a pool that fans out over the network can do both — a leg can
// find no healthy replica, and the request deadline must cap the slowest
// backend leg rather than being re-applied per hop. When the configured
// Pool implements DeadlineExecutor the server threads each request's
// deadline into these variants and maps returned errors onto wire codes
// (via the ErrCode() method when the error carries one).
type DeadlineExecutor interface {
	FilterRangeAppendUntil(dst []uint32, w geom.Rect, deadline time.Time) ([]uint32, error)
	FilterPointAppendUntil(dst []uint32, pt geom.Point, deadline time.Time) ([]uint32, error)
	RangeAppendUntil(dst []uint32, w geom.Rect, deadline time.Time) ([]uint32, error)
	PointAppendUntil(dst []uint32, pt geom.Point, eps float64, deadline time.Time) ([]uint32, error)
	NearestUntil(pt geom.Point, sc *parallel.Scratch, deadline time.Time) (parallel.NearestResult, error)
	KNearestAppendUntil(dst []rtree.Neighbor, pt geom.Point, k int, sc *parallel.Scratch, deadline time.Time) ([]rtree.Neighbor, error)
}

// BoundedNN is the optional bounded k-NN surface behind MsgNNQuery: the
// distributed tier's cross-server NN leg carries the router's running
// k-th-neighbor bound, and a pool that can prune with it (shard.Pool skips
// whole shards) implements this. Pools without it still answer NN legs via
// the unbounded path — the bound is an optimization, never a correctness
// requirement.
type BoundedNN interface {
	KNearestBoundedAppend(dst []rtree.Neighbor, pt geom.Point, k int, bound float64, sc *parallel.Scratch) ([]rtree.Neighbor, bool)
}

// Updatable is the optional live-update surface behind MsgInsert, MsgDelete,
// and MsgMove (mutable.Pool implements it; the router re-implements it as
// replicated fan-out). Each call applies one idempotent write and returns
// the owning shard's base epoch at apply time (the ack's staleness anchor:
// the write folds into base epoch+1 or later), whether a previous version of
// the object was visible, and whether the executor owns the object's
// position (false when a replicated write merely cleared a stale copy). A
// pool without this surface answers update messages with CodeUnsupported.
type Updatable interface {
	ApplyInsert(id uint32, seg geom.Segment) (epoch uint64, existed, owned bool, err error)
	ApplyDelete(id uint32) (epoch uint64, existed, owned bool, err error)
	ApplyMove(id uint32, seg geom.Segment) (epoch uint64, existed, owned bool, err error)
}

// SegResolver is the optional geometry surface an updatable executor adds:
// data-mode responses need segments for ids the base dataset has never
// heard of (inserted objects sit at or above Dataset().Len(), where
// Dataset().Seg would be out of range) and current geometry for moved ones.
// Executors without it resolve records through the dataset as before.
type SegResolver interface {
	SegOf(id uint32) geom.Segment
}

// RangeReporter is the optional live-summary surface a mutable pool adds
// (mutable.Pool implements it): per-shard version counters and current
// bounds (the qcache.Source half), plus live item counts and the cluster
// range → local shard mapping. A server whose pool reports ranges rebuilds
// its MsgSummary reply from the live state on every request, so a router
// polling summaries sees writes move the per-range (version, MBR, items)
// instead of the frozen registration snapshot. Pools without it keep the
// precomputed static summary.
type RangeReporter interface {
	qcache.Source
	// LocalShard maps a cluster-wide range index to the pool's local shard
	// index (-1 when the range is not held).
	LocalShard(global int) int
	// ShardItems returns the live object count of local shard i.
	ShardItems(i int) int
	// Len and Bounds are the pool-wide totals the summary header carries.
	Len() int
	Bounds() geom.Rect
}

// LiveRangeSet is the optional surface an adaptive pool adds on top of
// RangeReporter (a mutable pool with repartitioning enabled implements it):
// the range LAYOUT itself — the cut table, not just per-range state — can
// change at runtime, so MsgSummary replies must be rebuilt wholesale from
// the pool's current topology instead of patching a fixed-length
// registration template. LiveRangesEnabled gates the behavior: a pool that
// implements the methods but reports false keeps the template path, so a
// non-adaptive mutable pool serves summaries exactly as before.
type LiveRangeSet interface {
	LiveRangesEnabled() bool
	// SummaryRanges appends the pool's current per-range summary rows
	// (key span, items, version, MBR, heat) to dst and returns the
	// cluster-wide range count.
	SummaryRanges(dst []proto.RangeInfo) ([]proto.RangeInfo, int)
}

// HeatReporter is the optional per-shard query-heat surface (mutable.Pool
// implements it): the EWMA query rate the adaptive repartitioner splits and
// merges on, exported through summaries so routers and dashboards can watch
// the workload move.
type HeatReporter interface {
	ShardHeat(i int) float64
}

// BatchExecutor is the optional batch-aware surface a distributed executor
// adds (the Router implements it): one call answers every sub-query of a
// MsgBatchQuery, letting the executor group sub-queries by owning backend
// and issue one wire leg per backend instead of one full fan-out per
// sub-query. items[i] answers qs[i]: the executor appends ids into the
// slot's (already reset) IDs slice or sets Err/Text; slots arriving with
// Err already set were rejected by the server and must be skipped. Record
// materialization for data-mode queries stays with the server, so executors
// always answer in id space.
type BatchExecutor interface {
	RunQueryBatch(qs []proto.QueryMsg, items []proto.BatchItem, deadline time.Time)
}

// Config parameterizes a Server.
type Config struct {
	// Pool executes the queries; required. *parallel.Pool serves one
	// monolithic index; *shard.Pool scatter-gathers across spatial shards.
	Pool Executor
	// Master enables MsgShipmentReq (Fig. 2 subset extraction); nil
	// disables shipments with CodeUnsupported.
	Master *rtree.Tree
	// MaxInFlight bounds concurrently executing requests across all
	// connections; defaults to 4× the pool width.
	MaxInFlight int
	// AdmitTimeout is how long a request may wait for an in-flight slot
	// before it is refused with CodeOverload; defaults to 100ms.
	AdmitTimeout time.Duration
	// RequestTimeout caps one request's server-side time (admission wait
	// included); clients may ask for less, never more. Defaults to 5s.
	RequestTimeout time.Duration
	// WriteTimeout bounds one response write; defaults to 10s.
	WriteTimeout time.Duration
	// PointEps is the default point-query tolerance; DefaultPointEps when 0.
	PointEps float64
	// MaxKNN caps the k of k-NN queries; defaults to 1024.
	MaxKNN int
	// MaxShipmentBudget caps a shipment request's byte budget; defaults to
	// 64 MB (a larger budget is a protocol error).
	MaxShipmentBudget int
	// Obs enables observability: per-kind execution histograms, sampled
	// spans, and the MsgStatsReq snapshot carry this hub's metrics. Nil
	// disables instrumentation (the snapshot then carries only the core
	// counters).
	Obs *obs.Hub
	// Ranges declares the Hilbert key ranges this server holds, reported to
	// routers via MsgSummaryReq. Empty means a monolithic deployment: the
	// server reports one synthetic range covering the whole key space.
	Ranges []proto.RangeInfo
	// NumRanges is the cluster-wide total range count; required when Ranges
	// is set (every backend of one cluster must report the same value).
	NumRanges int
	// Cache enables the server-side query-result cache (internal/qcache);
	// nil disables it. The pool must expose a validity view: a local pool
	// always has one (its own shard versions when mutable, a frozen
	// pseudo-shard otherwise), and a distributed pool (internal/router)
	// qualifies by implementing qcache.Source over its cluster-wide
	// per-range version vector. Setting Cache on a pool with no view is a
	// configuration error New rejects — a cache that cannot be invalidated
	// would serve stale answers silently. See cache.go for the hit path.
	Cache *qcache.Cache

	// testDelay, when set, stalls every query execution — tests use it to
	// fill the admission window and overrun deadlines deterministically.
	testDelay time.Duration
}

func (c *Config) fill() error {
	if c.Pool == nil {
		return fmt.Errorf("serve: Config.Pool is required")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Pool.Workers()
	}
	if c.AdmitTimeout <= 0 {
		c.AdmitTimeout = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.PointEps <= 0 {
		c.PointEps = DefaultPointEps
	}
	if c.MaxKNN <= 0 {
		c.MaxKNN = 1024
	}
	if c.MaxShipmentBudget <= 0 {
		c.MaxShipmentBudget = 64 << 20
	}
	if len(c.Ranges) > 0 && c.NumRanges <= 0 {
		return fmt.Errorf("serve: Config.Ranges set without Config.NumRanges")
	}
	return nil
}

// Stats are cumulative server counters, safe to read at any time.
type Stats struct {
	// Conns is the number of connections accepted.
	Conns uint64
	// Served counts successfully answered requests (pings excluded).
	Served uint64
	// Overloads counts requests refused by admission control.
	Overloads uint64
	// Deadlines counts requests that finished past their deadline.
	Deadlines uint64
	// Errors counts bad requests and internal failures.
	Errors uint64
	// Shipments counts served shipment requests (also included in Served).
	Shipments uint64
	// Batches counts served batch requests (each also counts once in
	// Served); BatchQueries counts the sub-queries they carried.
	Batches uint64
	// BatchQueries counts the queries answered inside batch requests.
	BatchQueries uint64
	// Updates counts served insert/delete/move requests (also included in
	// Served).
	Updates uint64
}

// Server is a networked spatial-query server.
type Server struct {
	cfg   Config
	start time.Time
	// dx and bnn are the optional executor surfaces, asserted once at New so
	// the per-request path never repeats the type assertion. Either may be
	// nil: dx enables deadline threading and fallible queries (the router),
	// bnn enables bound-carrying NN legs (the sharded pool).
	dx  DeadlineExecutor
	bnn BoundedNN
	// upd and sr are the optional update surfaces: upd serves the live
	// write path (nil answers CodeUnsupported), sr resolves data-mode
	// geometry for ids the base dataset does not cover.
	upd Updatable
	sr  SegResolver
	// rr is the optional live-summary surface: when the pool reports
	// per-range state, MsgSummary replies are rebuilt live instead of
	// served from the frozen registration snapshot.
	rr RangeReporter
	// lrs is the optional live-range-SET surface: non-nil only when the
	// pool's range layout can change at runtime (adaptive repartitioning),
	// in which case summaries rebuild their whole range table per request.
	lrs LiveRangeSet
	// hr is the optional per-shard heat surface feeding summary heat.
	hr HeatReporter
	// bx is the optional batch-aware executor surface: batches route
	// through it (one leg per owning backend) instead of the per-item
	// loop whenever the result cache is off.
	bx BatchExecutor
	// summary is the precomputed MsgSummaryReq reply (ID filled per request;
	// Ranges shared read-only across replies, and used as the template the
	// live rebuild fills when rr is set).
	summary proto.SummaryMsg
	// qc is the result cache (nil = caching off) and qsrc the validity view
	// its entries are checked against. qsrc is resolved even without a
	// cache: it also feeds the epoch hints stamped on replies, which the
	// client's semantic cache validates shipped sub-indexes with. A
	// DeadlineExecutor pool gets them only by implementing qcache.Source
	// itself (the router's cluster version vector).
	qc   *qcache.Cache
	qsrc qcache.Source
	// em prices cache hits: a hit saves roughly one mean miss execution,
	// accumulated in savedNanos from the missNanos/missCount running mean.
	em         obs.EnergyModel
	missNanos  atomic.Int64
	missCount  atomic.Int64
	savedNanos atomic.Int64
	// sem holds one token per in-flight request.
	sem chan struct{}

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	connWG sync.WaitGroup // one per live connection

	nConns, nServed, nOverload, nDeadline, nErrors, nShipments atomic.Uint64
	nBatches, nBatchQueries, nUpdates                          atomic.Uint64

	// scratch pools per-request query state (result slices, traversal
	// buffers, response message shells) so a warm request allocates nothing.
	scratch sync.Pool

	metrics serveMetrics
}

// reqScratch is the per-request reusable state. Response messages built from
// it alias its slices, which is safe because conn.write serializes the frame
// before returning — the scratch goes back in the pool only after the
// response bytes are in the connection's write buffer.
type reqScratch struct {
	ids     []uint32
	nbs     []rtree.Neighbor
	psc     parallel.Scratch
	idMsg   proto.IDListMsg
	dataMsg proto.DataListMsg
	batch   proto.BatchReplyMsg
	nbrMsg  proto.NeighborsMsg
	ackMsg  proto.UpdateAckMsg
	// Cache-path state: the pre/post validity views and the superset
	// payload buffers (ids + geometry + NN distances) the cache copies out
	// into on a hit and the miss path executes into before storing.
	pre, post qcache.View
	cids      []uint32
	csegs     []geom.Segment
	cdists    []float64
}

// Retention caps for pooled scratch, mirroring internal/proto's: a scratch
// that served an outsized answer is dropped instead of pinning the memory.
const (
	maxScratchIDs     = 64 << 10
	maxScratchRecords = 16 << 10
)

func (s *Server) getScratch() *reqScratch {
	return s.scratch.Get().(*reqScratch)
}

func (s *Server) putScratch(sc *reqScratch) {
	if cap(sc.ids) > maxScratchIDs || cap(sc.dataMsg.Records) > maxScratchRecords ||
		cap(sc.nbrMsg.Neighbors) > maxScratchRecords {
		return
	}
	if cap(sc.cids) > maxScratchIDs || cap(sc.csegs) > maxScratchIDs || cap(sc.cdists) > maxScratchIDs {
		return
	}
	items := sc.batch.Items[:cap(sc.batch.Items)]
	for i := range items {
		if cap(items[i].IDs) > maxScratchIDs || cap(items[i].Recs) > maxScratchRecords {
			return
		}
	}
	s.scratch.Put(sc)
}

// serveMetrics holds the obs handles the hot path uses, resolved once at New
// so request goroutines never touch the registry maps. All handles are
// nil (no-op) when Config.Obs is nil.
type serveMetrics struct {
	// execHist[kind][mode] is the execution-time histogram of one query
	// shape; shipHist covers shipments, admitHist the admission wait,
	// writeHist the response serialization + write.
	execHist  [3][3]*obs.Histogram
	shipHist  *obs.Histogram
	admitHist *obs.Histogram
	writeHist *obs.Histogram
	rxBytes   *obs.Counter
	txBytes   *obs.Counter
	// writes counts physical connection writes, writeFrames the response
	// frames they carried — their ratio is the flush-coalescing factor.
	writes      *obs.Counter
	writeFrames *obs.Counter
	// Registry mirrors of the core Stats counters, so /metrics sees them
	// without reaching into the Server.
	conns, served, overloads, deadlines, errors, shipments *obs.Counter
	batches, batchQueries                                  *obs.Counter
	// nnLegHist covers MsgNNQuery legs, kept apart from execHist so the
	// per-kind client-query histograms stay comparable across deployments.
	nnLegHist *obs.Histogram
	// updateHist[kind] is the execution-time histogram of one update shape
	// (insert, delete, move); updates mirrors Stats.Updates.
	updateHist [3]*obs.Histogram
	updates    *obs.Counter
	// cacheSavedJ is the modeled server-compute Joules the result cache has
	// saved: each hit is priced as one mean miss execution.
	cacheSavedJ *obs.Gauge
}

var kindNames = [3]string{"point", "range", "nn"}

func newServeMetrics(h *obs.Hub) serveMetrics {
	var m serveMetrics
	if h == nil {
		return m
	}
	for k, kindName := range kindNames {
		for mo, mode := range [3]proto.Mode{proto.ModeData, proto.ModeIDs, proto.ModeFilter} {
			m.execHist[k][mo] = h.Reg.Histogram(
				obs.Name("serve_exec_seconds", "kind", kindName, "mode", mode.String()))
		}
	}
	m.shipHist = h.Reg.Histogram("serve_shipment_seconds")
	m.admitHist = h.Reg.Histogram("serve_admit_wait_seconds")
	m.writeHist = h.Reg.Histogram("serve_write_seconds")
	m.rxBytes = h.Reg.Counter("serve_rx_bytes_total")
	m.txBytes = h.Reg.Counter("serve_tx_bytes_total")
	m.conns = h.Reg.Counter("serve_conns_total")
	m.served = h.Reg.Counter("serve_served_total")
	m.overloads = h.Reg.Counter("serve_overloads_total")
	m.deadlines = h.Reg.Counter("serve_deadlines_total")
	m.errors = h.Reg.Counter("serve_errors_total")
	m.shipments = h.Reg.Counter("serve_shipments_total")
	m.batches = h.Reg.Counter("serve_batches_total")
	m.batchQueries = h.Reg.Counter("serve_batch_queries_total")
	m.writes = h.Reg.Counter("serve_writes_total")
	m.writeFrames = h.Reg.Counter("serve_write_frames_total")
	m.nnLegHist = h.Reg.Histogram("serve_nnleg_seconds")
	for k, kindName := range updateKindNames {
		m.updateHist[k] = h.Reg.Histogram(obs.Name("serve_update_seconds", "kind", kindName))
	}
	m.updates = h.Reg.Counter("serve_updates_total")
	m.cacheSavedJ = h.Reg.Gauge("qcache_saved_joules")
	return m
}

var updateKindNames = [3]string{"insert", "delete", "move"}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		start:   time.Now(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		conns:   make(map[net.Conn]struct{}),
		metrics: newServeMetrics(cfg.Obs),
	}
	s.dx, _ = cfg.Pool.(DeadlineExecutor)
	s.bnn, _ = cfg.Pool.(BoundedNN)
	s.upd, _ = cfg.Pool.(Updatable)
	s.sr, _ = cfg.Pool.(SegResolver)
	s.rr, _ = cfg.Pool.(RangeReporter)
	if lrs, ok := cfg.Pool.(LiveRangeSet); ok && lrs.LiveRangesEnabled() {
		if s.rr == nil {
			return nil, fmt.Errorf("serve: pool %T reports live ranges without RangeReporter", cfg.Pool)
		}
		s.lrs = lrs
	}
	s.hr, _ = cfg.Pool.(HeatReporter)
	s.bx, _ = cfg.Pool.(BatchExecutor)
	s.em = obs.DefaultEnergyModel()
	if cfg.Obs != nil {
		s.em = cfg.Obs.Energy
	}
	// Resolve the validity view. A pool that is its own qcache.Source (a
	// mutable pool's shard versions, or the router's cluster-wide per-range
	// version vector) supplies it directly; any other local pool gets a
	// single frozen pseudo-shard. A distributed pool without a Source has
	// no view at all — it can neither cache nor stamp epoch hints.
	if src, ok := cfg.Pool.(qcache.Source); ok {
		s.qsrc = src
	} else if s.dx == nil {
		rect := geom.Rect{
			Min: geom.Point{X: math.Inf(-1), Y: math.Inf(-1)},
			Max: geom.Point{X: math.Inf(1), Y: math.Inf(1)},
		}
		if b, ok := cfg.Pool.(interface{ Bounds() geom.Rect }); ok {
			if bb := b.Bounds(); !bb.IsEmpty() {
				rect = bb
			}
		}
		s.qsrc = qcache.Static{Rect: rect}
	}
	if cfg.Cache != nil {
		if s.qsrc == nil {
			return nil, fmt.Errorf(
				"serve: Config.Cache set but pool %T has no validity view (qcache.Source) to invalidate against", cfg.Pool)
		}
		s.qc = cfg.Cache
	}
	summary, err := buildSummary(&cfg)
	if err != nil {
		return nil, err
	}
	s.summary = summary
	s.scratch.New = func() any { return &reqScratch{} }
	return s, nil
}

// buildSummary precomputes the MsgSummaryReq reply: the Hilbert key ranges
// this server holds, its item count, and its data bounds. A server without
// explicit ranges (a monolithic deployment) reports one synthetic range
// covering the whole key space, so a router can register it like any
// partitioned backend.
func buildSummary(cfg *Config) (proto.SummaryMsg, error) {
	var items uint64
	if l, ok := cfg.Pool.(interface{ Len() int }); ok {
		items = uint64(l.Len())
	}
	bounds := geom.EmptyRect()
	if b, ok := cfg.Pool.(interface{ Bounds() geom.Rect }); ok {
		bounds = b.Bounds()
	}
	ranges := cfg.Ranges
	numRanges := uint32(cfg.NumRanges)
	if len(ranges) == 0 && cfg.NumRanges <= 0 {
		numRanges = 1
		rangeItems := uint32(math.MaxUint32)
		if items < math.MaxUint32 {
			rangeItems = uint32(items)
		}
		ranges = []proto.RangeInfo{{Index: 0, Items: rangeItems, Lo: 0, Hi: math.MaxUint64, MBR: bounds}}
	}
	m := proto.SummaryMsg{NumRanges: numRanges, Items: items, Bounds: bounds, Ranges: ranges}
	if err := m.Validate(); err != nil {
		return proto.SummaryMsg{}, fmt.Errorf("serve: invalid range summary: %w", err)
	}
	return m, nil
}

// summaryReply builds one MsgSummary response. For a frozen pool it is a
// shallow copy of the precomputed summary with the request id filled in (the
// Ranges slice shared read-only across replies). When the pool reports live
// range state, the reply is rebuilt from it — per-range version counters,
// current MBRs, and live item counts — so a router's refresh poll observes
// writes instead of the registration-time snapshot. The rebuild allocates a
// fresh Ranges slice per request, which is fine: summaries flow only at
// registration and on the refresh poll, a few per second at most.
func (s *Server) summaryReply(id uint32) *proto.SummaryMsg {
	m := s.summary
	m.ID = id
	if s.rr == nil {
		return &m
	}
	if s.lrs != nil {
		// Adaptive pool: the cut table itself moves (splits and merges), so
		// the whole range table — count included — rebuilds from the pool's
		// current topology. A router polling summaries picks the new cuts up
		// within one refresh interval.
		ranges, num := s.lrs.SummaryRanges(make([]proto.RangeInfo, 0, len(s.summary.Ranges)+2))
		n := s.rr.Len()
		m.NumRanges = uint32(num)
		m.Items = uint64(n)
		m.Bounds = s.rr.Bounds()
		m.Ranges = ranges
		return &m
	}
	ranges := make([]proto.RangeInfo, len(s.summary.Ranges))
	copy(ranges, s.summary.Ranges)
	if len(s.cfg.Ranges) == 0 {
		// Monolithic deployment: one synthetic range covering the whole key
		// space. Its version is the sum of the shard versions — monotone,
		// and it advances exactly when any shard's visible state changes.
		var ver uint64
		var heat float64
		for i := 0; i < s.rr.NumShards(); i++ {
			ver += s.rr.Version(i)
			if s.hr != nil {
				heat += s.hr.ShardHeat(i)
			}
		}
		n := s.rr.Len()
		b := s.rr.Bounds()
		ranges[0].Items = clampItems(n)
		ranges[0].Version = ver
		ranges[0].MBR = b
		ranges[0].Heat = heat
		m.Items = uint64(n)
		m.Bounds = b
	} else {
		bounds := geom.EmptyRect()
		var total uint64
		for i := range ranges {
			li := s.rr.LocalShard(int(ranges[i].Index))
			if li < 0 {
				continue
			}
			n := s.rr.ShardItems(li)
			mbr := s.rr.ShardBounds(li)
			ranges[i].Items = clampItems(n)
			ranges[i].Version = s.rr.Version(li)
			ranges[i].MBR = mbr
			if s.hr != nil {
				ranges[i].Heat = s.hr.ShardHeat(li)
			}
			total += uint64(n)
			bounds = bounds.Union(mbr)
		}
		m.Items = total
		m.Bounds = bounds
	}
	m.Ranges = ranges
	return &m
}

// clampItems clamps a live item count into the wire's uint32 field.
func clampItems(n int) uint32 {
	if n < 0 {
		return 0
	}
	if n > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(n)
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:        s.nConns.Load(),
		Served:       s.nServed.Load(),
		Overloads:    s.nOverload.Load(),
		Deadlines:    s.nDeadline.Load(),
		Errors:       s.nErrors.Load(),
		Shipments:    s.nShipments.Load(),
		Batches:      s.nBatches.Load(),
		BatchQueries: s.nBatchQueries.Load(),
		Updates:      s.nUpdates.Load(),
	}
}

// Serve accepts connections on lis until Shutdown or Close. It returns nil
// after a clean shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("serve: server is shut down")
	}
	if s.lis != nil {
		s.mu.Unlock()
		return fmt.Errorf("serve: Serve called twice")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.shutdown
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.nConns.Add(1)
		s.metrics.conns.Inc()
		go s.serveConn(nc)
	}
}

// ListenAndServe listens on addr and serves until shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Shutdown gracefully stops the server: no new connections or requests are
// accepted, in-flight requests drain and their responses are written, then
// connections close. It returns when everything has drained or timeout (≤ 0
// means wait forever) has passed.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.shutdown = true
	lis := s.lis
	// Poke every reader out of its blocking Read so it notices shutdown.
	for nc := range s.conns {
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		s.closeAllConns()
		return fmt.Errorf("serve: shutdown timed out after %v", timeout)
	}
}

// Close stops the server immediately, dropping in-flight work.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.closeAllConns()
	s.connWG.Wait()
	return nil
}

func (s *Server) closeAllConns() {
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
}

func (s *Server) inShutdown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// conn is the per-connection state.
type conn struct {
	srv *Server
	nc  net.Conn
	// wmu guards the write state below. Responses are encoded into wbuf
	// under wmu and flushed by whichever goroutine finds no flusher active —
	// so concurrent pipelined responses coalesce into one syscall.
	wmu     sync.Mutex
	wbuf    []byte // frames appended, awaiting flush
	wspare  []byte // retained buffer of the last flush, reused for wbuf
	writing bool   // a flusher is draining wbuf
	wclosed bool   // a write failed; the connection is dead
	// pending counts this connection's in-flight request goroutines.
	pending sync.WaitGroup
}

// readPollInterval is how often a blocked reader rechecks for shutdown.
const readPollInterval = time.Second

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{srv: s, nc: nc}
	defer func() {
		c.pending.Wait() // flush in-flight responses before closing
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connWG.Done()
	}()

	for {
		// The deadline is armed before the shutdown check: if Shutdown's
		// poke (SetReadDeadline(now)) lands between the check and a
		// later arm, this ordering guarantees the poke wins and the read
		// returns immediately — otherwise an idle connection could stall
		// the drain for a full readPollInterval. A SetReadDeadline error
		// means the socket is already torn down: drop the connection
		// rather than risk a read that can never be interrupted.
		if err := nc.SetReadDeadline(time.Now().Add(readPollInterval)); err != nil {
			return
		}
		if s.inShutdown() {
			return
		}
		msg, n, err := proto.ReadMessage(nc)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue // poll tick: recheck shutdown
			}
			return // EOF, peer reset, or a protocol error: drop the conn
		}
		arrived := time.Now()
		s.metrics.rxBytes.Add(uint64(n))

		switch m := msg.(type) {
		case *proto.PingMsg:
			// Pings bypass admission: they measure the link, not the server.
			// write serializes the echo before returning, so releasing the
			// pooled message afterwards is safe.
			c.write(m)
			proto.ReleaseMessage(m)
		case *proto.StatsReqMsg:
			// Snapshots bypass admission too: observability must stay
			// available when the server is saturated.
			c.write(s.statsSnapshot(m.ID))
		case *proto.SummaryReqMsg:
			// Summaries bypass admission like stats: a router must be able
			// to (re-)register against a saturated backend.
			c.write(s.summaryReply(m.ID))
		case *proto.QueryMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.BatchQueryMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.NNQueryMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.ShipmentReqMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.InsertMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.DeleteMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.MoveMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		default:
			s.nErrors.Add(1)
			s.metrics.errors.Inc()
			c.write(&proto.ErrorMsg{ID: msg.RequestID(), Code: proto.CodeBadRequest,
				Text: fmt.Sprintf("unexpected %v message", msg.Type())})
			proto.ReleaseMessage(msg)
		}
	}
}

// dispatch admits req and runs it in its own goroutine — the pipelining
// point: the reader immediately returns to the next frame.
func (c *conn) dispatch(req proto.Message, arrived time.Time, timeoutMicros uint32) {
	s := c.srv
	timeout := s.cfg.RequestTimeout
	if t := time.Duration(timeoutMicros) * time.Microsecond; t > 0 && t < timeout {
		timeout = t
	}
	deadline := arrived.Add(timeout)

	// Admission control. Blocking here stalls this connection's reader —
	// deliberate backpressure — but never past AdmitTimeout.
	select {
	case s.sem <- struct{}{}:
	default:
		admitWait := s.cfg.AdmitTimeout
		if rest := time.Until(deadline); rest < admitWait {
			admitWait = rest
		}
		timer := time.NewTimer(admitWait)
		select {
		case s.sem <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			s.nOverload.Add(1)
			s.metrics.overloads.Inc()
			c.write(&proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeOverload,
				Text: "admission queue full"})
			proto.ReleaseMessage(req)
			return
		}
	}
	admitted := time.Now()
	s.metrics.admitHist.Observe(admitted.Sub(arrived).Seconds())

	c.pending.Add(1)
	go func() {
		defer func() {
			<-s.sem
			c.pending.Done()
		}()
		var sp *obs.Span
		if h := s.cfg.Obs; h != nil {
			sp = h.Trace.Start(reqKind(req))
		}
		sp.Lap(obs.StageParse, admitted.Sub(arrived).Seconds())
		sp.Begin(obs.StageIndexWalk)
		sc := s.getScratch()
		execStart := time.Now()
		resp, panicked := s.safeExecute(req, sc, deadline)
		execSec := time.Since(execStart).Seconds()
		s.observeExec(req, execSec)
		if time.Now().After(deadline) {
			s.nDeadline.Add(1)
			s.metrics.deadlines.Inc()
			resp = &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeDeadline,
				Text: fmt.Sprintf("request exceeded %v deadline", timeout)}
		}
		if _, ok := resp.(*proto.ErrorMsg); ok {
			if resp.(*proto.ErrorMsg).Code != proto.CodeDeadline {
				s.nErrors.Add(1)
				s.metrics.errors.Inc()
			}
			sp.SetErr()
		} else {
			s.nServed.Add(1)
			s.metrics.served.Inc()
		}
		sp.Begin(obs.StageSerialize)
		writeStart := time.Now()
		// write serializes resp before returning, so the scratch the
		// response aliases can be pooled again immediately after.
		c.write(resp)
		s.metrics.writeHist.Observe(time.Since(writeStart).Seconds())
		if !panicked {
			// A panicking execution may have left the scratch in an
			// inconsistent state (e.g. a half-built pooled slice); drop it
			// rather than recycle it.
			s.putScratch(sc)
		}
		proto.ReleaseMessage(req)
		sp.Finish()
	}()
}

// reqKind labels a request for spans and histograms.
func reqKind(req proto.Message) string {
	switch m := req.(type) {
	case *proto.QueryMsg:
		if int(m.Kind) < len(kindNames) {
			return kindNames[m.Kind]
		}
	case *proto.BatchQueryMsg:
		return "batch"
	case *proto.NNQueryMsg:
		return "nn-leg"
	case *proto.ShipmentReqMsg:
		return "shipment"
	case *proto.InsertMsg:
		return "insert"
	case *proto.DeleteMsg:
		return "delete"
	case *proto.MoveMsg:
		return "move"
	}
	return "other"
}

// observeExec records one execution time into the matching histogram. Batch
// requests are recorded per sub-query inside executeBatch instead, so the
// per-kind histograms stay comparable between batched and single traffic.
func (s *Server) observeExec(req proto.Message, sec float64) {
	switch m := req.(type) {
	case *proto.QueryMsg:
		s.observeExecQuery(m, sec)
	case *proto.NNQueryMsg:
		s.metrics.nnLegHist.Observe(sec)
	case *proto.ShipmentReqMsg:
		s.metrics.shipHist.Observe(sec)
	case *proto.InsertMsg:
		s.metrics.updateHist[0].Observe(sec)
	case *proto.DeleteMsg:
		s.metrics.updateHist[1].Observe(sec)
	case *proto.MoveMsg:
		s.metrics.updateHist[2].Observe(sec)
	}
}

func (s *Server) observeExecQuery(q *proto.QueryMsg, sec float64) {
	if int(q.Kind) < 3 && int(q.Mode) < 3 {
		s.metrics.execHist[q.Kind][q.Mode].Observe(sec)
	}
}

// maxRetainedWriteBuf caps the flush buffer kept per connection; a burst
// that grew it past this is released back to the heap rather than pinned.
const maxRetainedWriteBuf = 1 << 20

// write enqueues one response frame and flushes the connection's write
// buffer. The frame is serialized under wmu — after write returns, m (and
// any scratch it aliases) may be reused. If another goroutine is already
// flushing, the frame is left for it to pick up: pipelined responses that
// land while a write syscall is in progress all go out in the next write,
// which is how N batched or pipelined responses cost O(1) syscalls. Write
// errors drop the connection (the reader will notice on its next poll).
func (c *conn) write(m proto.Message) {
	s := c.srv
	c.wmu.Lock()
	if c.wclosed {
		c.wmu.Unlock()
		return
	}
	var err error
	if c.wbuf, err = proto.AppendFrame(c.wbuf, m); err != nil {
		// Server-built replies always validate; this is defensive.
		c.wmu.Unlock()
		s.nErrors.Add(1)
		s.metrics.errors.Inc()
		return
	}
	s.metrics.writeFrames.Inc()
	if c.writing {
		c.wmu.Unlock()
		return
	}
	c.writing = true
	for len(c.wbuf) > 0 && !c.wclosed {
		buf := c.wbuf
		c.wbuf = c.wspare[:0]
		c.wspare = nil
		c.wmu.Unlock()

		// An unarmed write deadline would let a stalled peer pin this
		// writer forever; if arming fails the socket is already broken, so
		// skip the write and tear the connection down below.
		werr := c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if werr == nil {
			var n int
			n, werr = c.nc.Write(buf)
			s.metrics.txBytes.Add(uint64(n))
			s.metrics.writes.Inc()
		}

		c.wmu.Lock()
		if cap(buf) <= maxRetainedWriteBuf {
			c.wspare = buf[:0]
		}
		if werr != nil {
			c.wclosed = true
			c.nc.Close()
		}
	}
	c.writing = false
	c.wmu.Unlock()
}

// statsSnapshot builds the in-protocol stats reply. With obs enabled the
// registry snapshot already mirrors the core counters; with obs disabled the
// core counters are synthesized from the Server's atomics, so the snapshot
// is never empty.
func (s *Server) statsSnapshot(id uint32) *proto.StatsMsg {
	uptime := uint64(time.Since(s.start).Microseconds())
	if h := s.cfg.Obs; h != nil {
		return obs.ToStatsMsg(id, uptime, h.Reg.Snapshot())
	}
	st := s.Stats()
	counters := []obs.CounterValue{
		{Name: "serve_conns_total", Value: st.Conns},
		{Name: "serve_deadlines_total", Value: st.Deadlines},
		{Name: "serve_errors_total", Value: st.Errors},
		{Name: "serve_overloads_total", Value: st.Overloads},
		{Name: "serve_served_total", Value: st.Served},
		{Name: "serve_shipments_total", Value: st.Shipments},
		{Name: "serve_batches_total", Value: st.Batches},
		{Name: "serve_batch_queries_total", Value: st.BatchQueries},
		{Name: "serve_updates_total", Value: st.Updates},
	}
	if s.qc != nil {
		// With obs enabled the registry snapshot above already carries the
		// qcache_* series; synthesize them here so an obs-less server still
		// reports its cache to mqtop.
		cs := s.qc.Stats()
		counters = append(counters,
			obs.CounterValue{Name: "qcache_hits_total", Value: cs.Hits},
			obs.CounterValue{Name: "qcache_misses_total", Value: cs.Misses},
			obs.CounterValue{Name: "qcache_invalidations_total", Value: cs.Invalidations},
			obs.CounterValue{Name: "qcache_stores_total", Value: cs.Stores},
			obs.CounterValue{Name: "qcache_bypass_total", Value: cs.Bypasses},
		)
	}
	return obs.ToStatsMsg(id, uptime, obs.Snapshot{Counters: counters})
}

// safeExecute runs execute with panic containment: a panicking query
// answers CodeInternal instead of crashing the whole server, and reports
// panicked=true so the caller drops (rather than recycles) the scratch the
// panicking execution may have corrupted.
func (s *Server) safeExecute(req proto.Message, sc *reqScratch, deadline time.Time) (resp proto.Message, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			resp = &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeInternal,
				Text: truncText(fmt.Sprintf("panic in query execution: %v", r))}
		}
	}()
	return s.execute(req, sc, deadline), false
}

// truncText clamps s to the wire protocol's error-text limit.
func truncText(s string) string {
	if len(s) > proto.MaxErrorText {
		return s[:proto.MaxErrorText]
	}
	return s
}

// errToCode maps an executor error onto a wire code: errors that carry one
// (router errors) keep it, anything else is internal.
func errToCode(err error) (proto.ErrCode, string) {
	var ec interface{ ErrCode() proto.ErrCode }
	if errors.As(err, &ec) {
		return ec.ErrCode(), truncText(err.Error())
	}
	return proto.CodeInternal, truncText(err.Error())
}

// execute runs one admitted request and builds its response message. The
// response may alias sc's buffers; it must be serialized (conn.write does
// this before returning) before sc is reused.
func (s *Server) execute(req proto.Message, sc *reqScratch, deadline time.Time) proto.Message {
	if s.cfg.testDelay > 0 {
		time.Sleep(s.cfg.testDelay)
	}
	switch m := req.(type) {
	case *proto.QueryMsg:
		return s.executeQuery(m, sc, deadline)
	case *proto.BatchQueryMsg:
		return s.executeBatch(m, sc, deadline)
	case *proto.NNQueryMsg:
		return s.executeNN(m, sc, deadline)
	case *proto.ShipmentReqMsg:
		return s.executeShipment(m)
	case *proto.InsertMsg, *proto.DeleteMsg, *proto.MoveMsg:
		return s.executeUpdate(req, sc)
	}
	return &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeInternal, Text: "unroutable message"}
}

// executeUpdate applies one write through the Updatable surface and builds
// its epoch-carrying ack into the scratch.
func (s *Server) executeUpdate(req proto.Message, sc *reqScratch) proto.Message {
	if s.upd == nil {
		return &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeUnsupported,
			Text: "this server's pool is not updatable"}
	}
	var (
		reqID, objID   uint32
		epoch          uint64
		existed, owned bool
		err            error
	)
	switch m := req.(type) {
	case *proto.InsertMsg:
		reqID, objID = m.ID, m.ObjID
		epoch, existed, owned, err = s.upd.ApplyInsert(m.ObjID, m.Seg)
	case *proto.DeleteMsg:
		reqID, objID = m.ID, m.ObjID
		epoch, existed, owned, err = s.upd.ApplyDelete(m.ObjID)
	case *proto.MoveMsg:
		reqID, objID = m.ID, m.ObjID
		epoch, existed, owned, err = s.upd.ApplyMove(m.ObjID, m.Seg)
	}
	if err != nil {
		code, text := errToCode(err)
		return &proto.ErrorMsg{ID: reqID, Code: code, Text: text}
	}
	s.nUpdates.Add(1)
	s.metrics.updates.Inc()
	sc.ackMsg = proto.UpdateAckMsg{ID: reqID, ObjID: objID, Epoch: epoch, Existed: existed, Owned: owned}
	return &sc.ackMsg
}

// runQuery answers one query, appending the matching ids to dst. On error
// it returns dst untouched plus the error code and text. This is the single
// traversal entry both the single-query and batch paths share. When the
// pool is a DeadlineExecutor the request deadline is threaded into the
// traversal so a fanned-out query caps its slowest leg.
func (s *Server) runQuery(q *proto.QueryMsg, sc *reqScratch, dst []uint32, deadline time.Time) ([]uint32, proto.ErrCode, string) {
	eps := q.Eps
	if eps <= 0 {
		eps = s.cfg.PointEps
	}
	if s.dx != nil {
		return s.runQueryUntil(q, sc, dst, eps, deadline)
	}
	pool := s.cfg.Pool
	switch q.Kind {
	case proto.KindPoint:
		if q.Mode == proto.ModeFilter {
			return pool.FilterPointAppend(dst, q.Point), 0, ""
		}
		return pool.PointAppend(dst, q.Point, eps), 0, ""
	case proto.KindRange:
		if q.Mode == proto.ModeFilter {
			return pool.FilterRangeAppend(dst, q.Window), 0, ""
		}
		return pool.RangeAppend(dst, q.Window), 0, ""
	case proto.KindNN:
		k := int(q.K)
		if k > s.cfg.MaxKNN {
			return dst, proto.CodeBadRequest, fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxKNN)
		}
		if k > 1 {
			nbs, ok := pool.KNearestAppend(sc.nbs[:0], q.Point, k, &sc.psc)
			sc.nbs = nbs
			if !ok {
				return dst, proto.CodeUnsupported, "access method does not support k-NN"
			}
			for _, nb := range nbs {
				dst = append(dst, nb.ID)
			}
			return dst, 0, ""
		}
		if nn := pool.NearestWith(q.Point, &sc.psc); nn.OK {
			dst = append(dst, nn.ID)
		}
		return dst, 0, ""
	}
	return dst, proto.CodeBadRequest, "unknown query kind"
}

// runQueryUntil is runQuery over the DeadlineExecutor surface.
func (s *Server) runQueryUntil(q *proto.QueryMsg, sc *reqScratch, dst []uint32, eps float64, deadline time.Time) ([]uint32, proto.ErrCode, string) {
	var err error
	switch q.Kind {
	case proto.KindPoint:
		if q.Mode == proto.ModeFilter {
			dst, err = s.dx.FilterPointAppendUntil(dst, q.Point, deadline)
		} else {
			dst, err = s.dx.PointAppendUntil(dst, q.Point, eps, deadline)
		}
	case proto.KindRange:
		if q.Mode == proto.ModeFilter {
			dst, err = s.dx.FilterRangeAppendUntil(dst, q.Window, deadline)
		} else {
			dst, err = s.dx.RangeAppendUntil(dst, q.Window, deadline)
		}
	case proto.KindNN:
		k := int(q.K)
		if k > s.cfg.MaxKNN {
			return dst, proto.CodeBadRequest, fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxKNN)
		}
		if k > 1 {
			var nbs []rtree.Neighbor
			nbs, err = s.dx.KNearestAppendUntil(sc.nbs[:0], q.Point, k, &sc.psc, deadline)
			sc.nbs = nbs
			if err == nil {
				for _, nb := range nbs {
					dst = append(dst, nb.ID)
				}
			}
		} else {
			var nn parallel.NearestResult
			nn, err = s.dx.NearestUntil(q.Point, &sc.psc, deadline)
			if err == nil && nn.OK {
				dst = append(dst, nn.ID)
			}
		}
	default:
		return dst, proto.CodeBadRequest, "unknown query kind"
	}
	if err != nil {
		code, text := errToCode(err)
		return dst, code, text
	}
	return dst, 0, ""
}

// executeNN answers one router NN leg (MsgNNQuery): a k-NN query carrying
// the router's running k-th-neighbor bound, answered with exact distances.
// Preference order: the bound-aware surface when the pool has one, the
// deadline surface when the pool is distributed (the bound is only a hint,
// dropping it never costs correctness), the plain unbounded path otherwise.
func (s *Server) executeNN(m *proto.NNQueryMsg, sc *reqScratch, deadline time.Time) proto.Message {
	k := int(m.K)
	if k <= 0 {
		k = 1
	}
	if k > s.cfg.MaxKNN {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeBadRequest,
			Text: fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxKNN)}
	}
	bound := m.Bound
	if bound <= 0 {
		bound = math.Inf(1)
	}
	if s.qc != nil {
		if math.IsInf(bound, 1) {
			// Only unbounded legs are cacheable: the router's running bound
			// is not part of the key space, and a bounded answer is a
			// truncation no later query could safely refine from.
			ids, dists, code, text, handled := s.cachedNN(m.Point, k, sc, deadline)
			if handled {
				if code != 0 {
					return &proto.ErrorMsg{ID: m.ID, Code: code, Text: text}
				}
				out := sc.nbrMsg.Neighbors[:0]
				for i, id := range ids {
					out = append(out, proto.Neighbor{ID: id, Dist: dists[i]})
				}
				sc.nbrMsg = proto.NeighborsMsg{ID: m.ID, Neighbors: out}
				return &sc.nbrMsg
			}
		} else {
			s.qc.Bypass()
		}
	}
	var (
		nbs []rtree.Neighbor
		ok  = true
		err error
	)
	switch {
	case s.bnn != nil:
		nbs, ok = s.bnn.KNearestBoundedAppend(sc.nbs[:0], m.Point, k, bound, &sc.psc)
	case s.dx != nil:
		nbs, err = s.dx.KNearestAppendUntil(sc.nbs[:0], m.Point, k, &sc.psc, deadline)
	default:
		nbs, ok = s.cfg.Pool.KNearestAppend(sc.nbs[:0], m.Point, k, &sc.psc)
	}
	sc.nbs = nbs
	if err != nil {
		code, text := errToCode(err)
		return &proto.ErrorMsg{ID: m.ID, Code: code, Text: text}
	}
	if !ok {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeUnsupported,
			Text: "access method does not support k-NN"}
	}
	out := sc.nbrMsg.Neighbors[:0]
	for _, nb := range nbs {
		out = append(out, proto.Neighbor{ID: nb.ID, Dist: nb.Dist})
	}
	sc.nbrMsg = proto.NeighborsMsg{ID: m.ID, Neighbors: out}
	return &sc.nbrMsg
}

// segOf resolves one record's geometry: through the pool's SegResolver when
// it has one (live geometry, inserted ids included), else the base dataset.
func (s *Server) segOf(ds *dataset.Dataset, id uint32) geom.Segment {
	if s.sr != nil {
		return s.sr.SegOf(id)
	}
	return ds.Seg(id)
}

func (s *Server) executeQuery(q *proto.QueryMsg, sc *reqScratch, deadline time.Time) proto.Message {
	var (
		ids       []uint32
		segs      []geom.Segment // aligned with ids when fromCache
		fromCache bool
	)
	if s.qc != nil {
		cids, csegs, code, text, handled := s.runQueryCached(q, sc, deadline)
		if handled {
			if code != 0 {
				return &proto.ErrorMsg{ID: q.ID, Code: code, Text: text}
			}
			ids, segs, fromCache = cids, csegs, true
		}
	}
	if !fromCache {
		var code proto.ErrCode
		var text string
		ids, code, text = s.runQuery(q, sc, sc.ids[:0], deadline)
		sc.ids = ids
		if code != 0 {
			return &proto.ErrorMsg{ID: q.ID, Code: code, Text: text}
		}
	}
	if q.Mode == proto.ModeData {
		recs := sc.dataMsg.Records[:0]
		if fromCache {
			// The cached entry carries its geometry: no per-id SegOf (and no
			// pool-level owner-table lock) on the hit path.
			for i, id := range ids {
				recs = append(recs, proto.Record{ID: id, Seg: segs[i]})
			}
		} else {
			ds := s.cfg.Pool.Dataset()
			for _, id := range ids {
				recs = append(recs, proto.Record{ID: id, Seg: s.segOf(ds, id)})
			}
		}
		sc.dataMsg = proto.DataListMsg{ID: q.ID, Epoch: s.epochHint(), Records: recs}
		return &sc.dataMsg
	}
	sc.idMsg = proto.IDListMsg{ID: q.ID, Epoch: s.epochHint(), IDs: ids}
	return &sc.idMsg
}

// executeBatch answers every query of a batch into one reply message. Item
// slices are reused from the scratch's previous batch, so a warm batch of
// already-seen shape allocates nothing. Per-item failures (e.g. an over-limit
// k mid-batch) become per-item errors; the rest of the batch still answers.
func (s *Server) executeBatch(m *proto.BatchQueryMsg, sc *reqScratch, deadline time.Time) proto.Message {
	if s.bx != nil && s.qc == nil {
		// Batch-aware pool (the router): hand the whole batch over so it
		// issues one leg per owning backend instead of one fan-out per
		// sub-query. With the result cache on, the per-item loop below is
		// kept instead — the cache probes and fills per sub-query, and a
		// hot batch answering mostly from cache beats a grouped fan-out.
		return s.executeBatchGrouped(m, sc, deadline)
	}
	items := sc.batch.Items[:0]
	for i := range m.Queries {
		if i < cap(items) {
			items = items[:i+1]
		} else {
			items = append(items, proto.BatchItem{})
		}
		it := &items[i]
		it.IDs, it.Recs, it.Err, it.Text = it.IDs[:0], it.Recs[:0], 0, ""

		q := &m.Queries[i]
		start := time.Now()
		handled := false
		if s.qc != nil {
			var cids []uint32
			var csegs []geom.Segment
			var code proto.ErrCode
			var text string
			if cids, csegs, code, text, handled = s.runQueryCached(q, sc, deadline); handled {
				switch {
				case code != 0:
					it.Err, it.Text = code, text
				case q.Mode == proto.ModeData:
					for j, id := range cids {
						it.Recs = append(it.Recs, proto.Record{ID: id, Seg: csegs[j]})
					}
				default:
					it.IDs = append(it.IDs, cids...)
				}
			}
		}
		if !handled {
			if q.Mode == proto.ModeData {
				ids, code, text := s.runQuery(q, sc, sc.ids[:0], deadline)
				sc.ids = ids
				if code != 0 {
					it.Err, it.Text = code, text
				} else {
					ds := s.cfg.Pool.Dataset()
					for _, id := range ids {
						it.Recs = append(it.Recs, proto.Record{ID: id, Seg: s.segOf(ds, id)})
					}
				}
			} else {
				ids, code, text := s.runQuery(q, sc, it.IDs, deadline)
				if code != 0 {
					it.Err, it.Text = code, text
				} else {
					it.IDs = ids
				}
			}
		}
		s.observeExecQuery(q, time.Since(start).Seconds())
	}
	sc.batch.ID = m.ID
	sc.batch.Epoch = s.epochHint()
	sc.batch.Items = items
	s.nBatches.Add(1)
	s.nBatchQueries.Add(uint64(len(m.Queries)))
	s.metrics.batches.Inc()
	s.metrics.batchQueries.Add(uint64(len(m.Queries)))
	return &sc.batch
}

// executeBatchGrouped is the locality-aware batch path: the pool's
// BatchExecutor answers every sub-query in id space (grouping them by owning
// backend under the hood), then data-mode items materialize their records
// here. Per-item k limits are enforced before the handoff; pre-set Err slots
// are the executor's contract to skip.
func (s *Server) executeBatchGrouped(m *proto.BatchQueryMsg, sc *reqScratch, deadline time.Time) proto.Message {
	items := sc.batch.Items[:0]
	for i := range m.Queries {
		if i < cap(items) {
			items = items[:i+1]
		} else {
			items = append(items, proto.BatchItem{})
		}
		it := &items[i]
		it.IDs, it.Recs, it.Err, it.Text = it.IDs[:0], it.Recs[:0], 0, ""
		if q := &m.Queries[i]; q.Kind == proto.KindNN && int(q.K) > s.cfg.MaxKNN {
			it.Err = proto.CodeBadRequest
			it.Text = fmt.Sprintf("k=%d exceeds limit %d", q.K, s.cfg.MaxKNN)
		}
	}
	start := time.Now()
	s.bx.RunQueryBatch(m.Queries, items, deadline)
	var per float64
	if len(m.Queries) > 0 {
		per = time.Since(start).Seconds() / float64(len(m.Queries))
	}
	ds := s.cfg.Pool.Dataset()
	for i := range m.Queries {
		q := &m.Queries[i]
		it := &items[i]
		if it.Err == 0 && q.Mode == proto.ModeData {
			for _, id := range it.IDs {
				it.Recs = append(it.Recs, proto.Record{ID: id, Seg: s.segOf(ds, id)})
			}
			it.IDs = it.IDs[:0]
		}
		s.observeExecQuery(q, per)
	}
	sc.batch.ID = m.ID
	sc.batch.Epoch = s.epochHint()
	sc.batch.Items = items
	s.nBatches.Add(1)
	s.nBatchQueries.Add(uint64(len(m.Queries)))
	s.metrics.batches.Inc()
	s.metrics.batchQueries.Add(uint64(len(m.Queries)))
	return &sc.batch
}

func (s *Server) executeShipment(m *proto.ShipmentReqMsg) proto.Message {
	if s.cfg.Master == nil {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeUnsupported,
			Text: "server has no master index for shipments"}
	}
	if int(m.BudgetBytes) > s.cfg.MaxShipmentBudget {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeBadRequest,
			Text: fmt.Sprintf("budget %d exceeds limit %d", m.BudgetBytes, s.cfg.MaxShipmentBudget)}
	}
	window := m.Window
	if window.IsEmpty() {
		// An empty window centers the shipment on the dataset.
		c := s.cfg.Master.Bounds().Center()
		window = geom.Rect{Min: c, Max: c}
	}
	ship, err := s.cfg.Master.ExtractSubset(window, rtree.Budget{
		Bytes:       int(m.BudgetBytes),
		RecordBytes: int(m.RecordBytes),
	}, ops.Null{})
	if err != nil {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeBadRequest, Text: err.Error()}
	}
	ds := s.cfg.Pool.Dataset()
	recs := make([]proto.Record, len(ship.Items))
	for i, it := range ship.Items {
		recs[i] = proto.Record{ID: it.ID, Seg: ds.Seg(it.ID)}
	}
	s.nShipments.Add(1)
	s.metrics.shipments.Inc()
	// A shipment is cut from the master tree — the frozen seed state. It may
	// claim currency (carry a non-zero epoch hint the client's semantic cache
	// can validate against) only while the live index has never been written:
	// after the first write the master no longer reflects the live index.
	var epoch uint64
	if s.qsrc != nil && qcache.Unwritten(s.qsrc) {
		epoch = qcache.HintOf(s.qsrc)
	}
	return &proto.ShipmentMsg{ID: m.ID, Epoch: epoch, Coverage: ship.Coverage, Records: recs}
}
