// Package serve is the real networked counterpart of the paper's simulated
// server: a concurrent TCP service answering point, range, and (k-)NN
// queries — and Fig. 2 index shipments — over the length-prefixed binary
// protocol of internal/proto, against one shared packed R-tree through an
// internal/parallel pool.
//
// Concurrency model:
//
//   - one goroutine per connection reads frames;
//   - each admitted request runs in its own goroutine, so a connection can
//     pipeline requests (responses carry the request id and may return out
//     of order);
//   - admission control bounds the in-flight requests across all
//     connections: when the server is saturated the reader blocks — TCP
//     backpressure — for up to AdmitTimeout before failing the request with
//     CodeOverload;
//   - each request carries a deadline (client-requested, capped by the
//     server); work that finishes past it is answered with CodeDeadline;
//   - Shutdown drains in-flight requests, then closes connections.
package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
)

// DefaultPointEps mirrors core.PointEps: the point-query incidence tolerance
// in map units.
const DefaultPointEps = 2.0

// Config parameterizes a Server.
type Config struct {
	// Pool executes the queries; required.
	Pool *parallel.Pool
	// Master enables MsgShipmentReq (Fig. 2 subset extraction); nil
	// disables shipments with CodeUnsupported.
	Master *rtree.Tree
	// MaxInFlight bounds concurrently executing requests across all
	// connections; defaults to 4× the pool width.
	MaxInFlight int
	// AdmitTimeout is how long a request may wait for an in-flight slot
	// before it is refused with CodeOverload; defaults to 100ms.
	AdmitTimeout time.Duration
	// RequestTimeout caps one request's server-side time (admission wait
	// included); clients may ask for less, never more. Defaults to 5s.
	RequestTimeout time.Duration
	// WriteTimeout bounds one response write; defaults to 10s.
	WriteTimeout time.Duration
	// PointEps is the default point-query tolerance; DefaultPointEps when 0.
	PointEps float64
	// MaxKNN caps the k of k-NN queries; defaults to 1024.
	MaxKNN int
	// MaxShipmentBudget caps a shipment request's byte budget; defaults to
	// 64 MB (a larger budget is a protocol error).
	MaxShipmentBudget int

	// testDelay, when set, stalls every query execution — tests use it to
	// fill the admission window and overrun deadlines deterministically.
	testDelay time.Duration
}

func (c *Config) fill() error {
	if c.Pool == nil {
		return fmt.Errorf("serve: Config.Pool is required")
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * c.Pool.Workers()
	}
	if c.AdmitTimeout <= 0 {
		c.AdmitTimeout = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.PointEps <= 0 {
		c.PointEps = DefaultPointEps
	}
	if c.MaxKNN <= 0 {
		c.MaxKNN = 1024
	}
	if c.MaxShipmentBudget <= 0 {
		c.MaxShipmentBudget = 64 << 20
	}
	return nil
}

// Stats are cumulative server counters, safe to read at any time.
type Stats struct {
	// Conns is the number of connections accepted.
	Conns uint64
	// Served counts successfully answered requests (pings excluded).
	Served uint64
	// Overloads counts requests refused by admission control.
	Overloads uint64
	// Deadlines counts requests that finished past their deadline.
	Deadlines uint64
	// Errors counts bad requests and internal failures.
	Errors uint64
	// Shipments counts served shipment requests (also included in Served).
	Shipments uint64
}

// Server is a networked spatial-query server.
type Server struct {
	cfg Config
	// sem holds one token per in-flight request.
	sem chan struct{}

	mu       sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	connWG sync.WaitGroup // one per live connection

	nConns, nServed, nOverload, nDeadline, nErrors, nShipments atomic.Uint64
}

// New builds a Server.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		conns: make(map[net.Conn]struct{}),
	}, nil
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Conns:     s.nConns.Load(),
		Served:    s.nServed.Load(),
		Overloads: s.nOverload.Load(),
		Deadlines: s.nDeadline.Load(),
		Errors:    s.nErrors.Load(),
		Shipments: s.nShipments.Load(),
	}
}

// Serve accepts connections on lis until Shutdown or Close. It returns nil
// after a clean shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("serve: server is shut down")
	}
	if s.lis != nil {
		s.mu.Unlock()
		return fmt.Errorf("serve: Serve called twice")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.shutdown
			s.mu.Unlock()
			if closing {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		s.nConns.Add(1)
		go s.serveConn(nc)
	}
}

// ListenAndServe listens on addr and serves until shutdown.
func (s *Server) ListenAndServe(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(lis)
}

// Shutdown gracefully stops the server: no new connections or requests are
// accepted, in-flight requests drain and their responses are written, then
// connections close. It returns when everything has drained or timeout (≤ 0
// means wait forever) has passed.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	s.shutdown = true
	lis := s.lis
	// Poke every reader out of its blocking Read so it notices shutdown.
	for nc := range s.conns {
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	if timeout <= 0 {
		<-done
		return nil
	}
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		s.closeAllConns()
		return fmt.Errorf("serve: shutdown timed out after %v", timeout)
	}
}

// Close stops the server immediately, dropping in-flight work.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.closeAllConns()
	s.connWG.Wait()
	return nil
}

func (s *Server) closeAllConns() {
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
}

func (s *Server) inShutdown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shutdown
}

// conn is the per-connection state.
type conn struct {
	srv *Server
	nc  net.Conn
	// wmu serializes response writes from the request goroutines.
	wmu sync.Mutex
	// pending counts this connection's in-flight request goroutines.
	pending sync.WaitGroup
}

// readPollInterval is how often a blocked reader rechecks for shutdown.
const readPollInterval = time.Second

func (s *Server) serveConn(nc net.Conn) {
	c := &conn{srv: s, nc: nc}
	defer func() {
		c.pending.Wait() // flush in-flight responses before closing
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.connWG.Done()
	}()

	for {
		if s.inShutdown() {
			return
		}
		nc.SetReadDeadline(time.Now().Add(readPollInterval))
		msg, _, err := proto.ReadMessage(nc)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue // poll tick: recheck shutdown
			}
			return // EOF, peer reset, or a protocol error: drop the conn
		}
		arrived := time.Now()

		switch m := msg.(type) {
		case *proto.PingMsg:
			// Pings bypass admission: they measure the link, not the server.
			c.write(m)
		case *proto.QueryMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		case *proto.ShipmentReqMsg:
			c.dispatch(m, arrived, m.TimeoutMicros)
		default:
			s.nErrors.Add(1)
			c.write(&proto.ErrorMsg{ID: msg.RequestID(), Code: proto.CodeBadRequest,
				Text: fmt.Sprintf("unexpected %v message", msg.Type())})
		}
	}
}

// dispatch admits req and runs it in its own goroutine — the pipelining
// point: the reader immediately returns to the next frame.
func (c *conn) dispatch(req proto.Message, arrived time.Time, timeoutMicros uint32) {
	s := c.srv
	timeout := s.cfg.RequestTimeout
	if t := time.Duration(timeoutMicros) * time.Microsecond; t > 0 && t < timeout {
		timeout = t
	}
	deadline := arrived.Add(timeout)

	// Admission control. Blocking here stalls this connection's reader —
	// deliberate backpressure — but never past AdmitTimeout.
	select {
	case s.sem <- struct{}{}:
	default:
		admitWait := s.cfg.AdmitTimeout
		if rest := time.Until(deadline); rest < admitWait {
			admitWait = rest
		}
		timer := time.NewTimer(admitWait)
		select {
		case s.sem <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			s.nOverload.Add(1)
			c.write(&proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeOverload,
				Text: "admission queue full"})
			return
		}
	}

	c.pending.Add(1)
	go func() {
		defer func() {
			<-s.sem
			c.pending.Done()
		}()
		resp := s.execute(req)
		if time.Now().After(deadline) {
			s.nDeadline.Add(1)
			resp = &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeDeadline,
				Text: fmt.Sprintf("request exceeded %v deadline", timeout)}
		}
		if _, ok := resp.(*proto.ErrorMsg); ok {
			if resp.(*proto.ErrorMsg).Code != proto.CodeDeadline {
				s.nErrors.Add(1)
			}
		} else {
			s.nServed.Add(1)
		}
		c.write(resp)
	}()
}

// write sends one response frame; write errors drop the connection (the
// reader will notice on its next poll).
func (c *conn) write(m proto.Message) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	if _, err := proto.WriteMessage(c.nc, m); err != nil {
		c.nc.Close()
	}
}

// execute runs one admitted request and builds its response message.
func (s *Server) execute(req proto.Message) proto.Message {
	if s.cfg.testDelay > 0 {
		time.Sleep(s.cfg.testDelay)
	}
	switch m := req.(type) {
	case *proto.QueryMsg:
		return s.executeQuery(m)
	case *proto.ShipmentReqMsg:
		return s.executeShipment(m)
	}
	return &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeInternal, Text: "unroutable message"}
}

func (s *Server) executeQuery(q *proto.QueryMsg) proto.Message {
	eps := q.Eps
	if eps <= 0 {
		eps = s.cfg.PointEps
	}
	pool := s.cfg.Pool

	var ids []uint32
	switch q.Kind {
	case proto.KindPoint:
		if q.Mode == proto.ModeFilter {
			ids = pool.FilterPoint(q.Point)
		} else {
			ids = pool.Point(q.Point, eps)
		}
	case proto.KindRange:
		if q.Mode == proto.ModeFilter {
			ids = pool.FilterRange(q.Window)
		} else {
			ids = pool.Range(q.Window)
		}
	case proto.KindNN:
		k := int(q.K)
		if k > s.cfg.MaxKNN {
			return &proto.ErrorMsg{ID: q.ID, Code: proto.CodeBadRequest,
				Text: fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxKNN)}
		}
		if k > 1 {
			neighbors, ok := pool.KNearest(q.Point, k)
			if !ok {
				return &proto.ErrorMsg{ID: q.ID, Code: proto.CodeUnsupported,
					Text: "access method does not support k-NN"}
			}
			for _, nb := range neighbors {
				ids = append(ids, nb.ID)
			}
		} else if nn := pool.Nearest(q.Point); nn.OK {
			ids = append(ids, nn.ID)
		}
	}

	if q.Mode == proto.ModeData {
		ds := pool.Dataset()
		recs := make([]proto.Record, len(ids))
		for i, id := range ids {
			recs[i] = proto.Record{ID: id, Seg: ds.Seg(id)}
		}
		return &proto.DataListMsg{ID: q.ID, Records: recs}
	}
	return &proto.IDListMsg{ID: q.ID, IDs: ids}
}

func (s *Server) executeShipment(m *proto.ShipmentReqMsg) proto.Message {
	if s.cfg.Master == nil {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeUnsupported,
			Text: "server has no master index for shipments"}
	}
	if int(m.BudgetBytes) > s.cfg.MaxShipmentBudget {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeBadRequest,
			Text: fmt.Sprintf("budget %d exceeds limit %d", m.BudgetBytes, s.cfg.MaxShipmentBudget)}
	}
	window := m.Window
	if window.IsEmpty() {
		// An empty window centers the shipment on the dataset.
		c := s.cfg.Master.Bounds().Center()
		window = geom.Rect{Min: c, Max: c}
	}
	ship, err := s.cfg.Master.ExtractSubset(window, rtree.Budget{
		Bytes:       int(m.BudgetBytes),
		RecordBytes: int(m.RecordBytes),
	}, ops.Null{})
	if err != nil {
		return &proto.ErrorMsg{ID: m.ID, Code: proto.CodeBadRequest, Text: err.Error()}
	}
	ds := s.cfg.Pool.Dataset()
	recs := make([]proto.Record, len(ship.Items))
	for i, it := range ship.Items {
		recs[i] = proto.Record{ID: it.ID, Seg: ds.Seg(it.ID)}
	}
	s.nShipments.Add(1)
	return &proto.ShipmentMsg{ID: m.ID, Coverage: ship.Coverage, Records: recs}
}
