// planner.go is the live partitioning decision: the §4.1 analytic advisor
// (core.AnalyticInputs) driven by *measured* link conditions instead of
// simulated ones, choosing per query between executing fully at the client
// against a shipped sub-index and offloading to the server — the paper's
// Table 1 schemes as real execution plans, the way NeuPart-style systems
// consult an analytical model at request time.
package client

import (
	"fmt"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/cpu"
	"mobispatial/internal/energy"
	"mobispatial/internal/geom"
	"mobispatial/internal/nic"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
)

// Plan is a query execution plan.
type Plan uint8

// The plans, from most client-side to most server-side.
const (
	// PlanLocal answers fully at the client from the shipment (Table 1
	// fully-client).
	PlanLocal Plan = iota
	// PlanServerIDs offloads execution and receives ids only, which the
	// client materializes from its shipped records — the hybrid plan:
	// Table 1 fully-server with the data present at the client (§6.1.1).
	PlanServerIDs
	// PlanServerData offloads execution and receives full records (Table 1
	// fully-server, data absent).
	PlanServerData
)

// String implements fmt.Stringer.
func (p Plan) String() string {
	switch p {
	case PlanLocal:
		return "fully-client"
	case PlanServerIDs:
		return "server-ids"
	case PlanServerData:
		return "fully-server"
	}
	return fmt.Sprintf("Plan(%d)", uint8(p))
}

// Objective selects which §4.1 condition drives the plan choice.
type Objective uint8

// The objectives.
const (
	// Performance minimizes client-observed cycles (the §4.1 performance
	// condition).
	Performance Objective = iota
	// Energy minimizes client energy (the §4.1 energy condition).
	Energy
)

// CostModel calibrates the planner's analytic inputs: the per-work cycle
// prices and the power draws of §4.1, defaulting to the repository's
// simulated machines (Table 2–4).
type CostModel struct {
	// ClientHz and ServerHz are the two clock rates.
	ClientHz, ServerHz float64
	// CyclesPerNodeVisit prices one index-node visit of the filtering step
	// (scan + MBR tests, cache effects folded in).
	CyclesPerNodeVisit float64
	// CyclesPerCandidate prices one refinement: record decode + exact
	// geometry predicate.
	CyclesPerCandidate float64
	// CyclesPerResultID prices materializing one answer id locally.
	CyclesPerResultID float64
	// CyclesPerProtoPacket and CyclesPerProtoByte price protocol
	// processing (§5.2).
	CyclesPerProtoPacket, CyclesPerProtoByte float64
	// Powers in watts: client compute, NIC transmit/receive/idle/sleep,
	// and the blocked-core draw.
	PClient, PTx, PRx, PIdle, PSleep, PBlocked float64
}

// DefaultCostModel prices work like the simulated Table 3/4 machines: a
// 125 MHz client against a 1 GHz server at 1 km range.
func DefaultCostModel() CostModel {
	e := energy.DefaultParams()
	return CostModel{
		ClientHz:             cpu.DefaultClientConfig().ClockHz,
		ServerHz:             cpu.DefaultServerConfig().ClockHz,
		CyclesPerNodeVisit:   600,
		CyclesPerCandidate:   1500,
		CyclesPerResultID:    40,
		CyclesPerProtoPacket: 400,
		CyclesPerProtoByte:   4,
		PClient:              0.2,
		PTx:                  nic.TxPower1Km,
		PRx:                  nic.RxPower,
		PIdle:                nic.IdlePower,
		PSleep:               nic.SleepPower,
		PBlocked:             e.CPUSleepWatts,
	}
}

// Planner chooses and executes per-query plans for one client.
type Planner struct {
	c       *Client
	model   CostModel
	obj     Objective
	eps     float64
	batch   int
	ship    *Shipment
	metrics plannerMetrics
}

// NewPlanner builds a planner with the default cost model and the
// performance objective. Observability follows the client: with Config.Obs
// set, every Execute records per-scheme metrics, a sampled span, and the
// predicted-vs-actual partitioning error.
func NewPlanner(c *Client) *Planner {
	return &Planner{c: c, model: DefaultCostModel(), eps: core.PointEps,
		metrics: newPlannerMetrics(c.hub)}
}

// SetCostModel replaces the cost calibration.
func (p *Planner) SetCostModel(m CostModel) { p.model = m }

// SetObjective selects the driving §4.1 condition.
func (p *Planner) SetObjective(o Objective) { p.obj = o }

// SetBatch declares that offloaded queries travel in batches of n (the
// QueryBatch wire message), so the advisor prices the per-exchange costs —
// frame and packet headers, protocol cycles, the NIC wakeup — at 1/n per
// query. n <= 1 restores unbatched pricing.
func (p *Planner) SetBatch(n int) {
	if n < 1 {
		n = 1
	}
	p.batch = n
}

// Shipment returns the cached shipment, nil before FetchShipment.
func (p *Planner) Shipment() *Shipment { return p.ship }

// FetchShipment pulls and caches a shipment covering window under
// budgetBytes of client memory (see Client.FetchShipment).
func (p *Planner) FetchShipment(window geom.Rect, budgetBytes, recordBytes int) error {
	ship, err := p.c.FetchShipment(window, budgetBytes, recordBytes)
	if err != nil {
		return err
	}
	p.ship = ship
	return nil
}

// Result is one planned execution's outcome.
type Result struct {
	Plan    Plan
	Records []proto.Record
	// Verdict is the advisor's reasoning for covered queries (zero value
	// when the plan was forced by missing coverage).
	Verdict core.Verdict
}

// Plan chooses the execution plan for q. Queries outside the shipment's
// coverage must go to the server; covered queries consult the §4.1 advisor
// with measured link conditions.
func (p *Planner) Plan(q core.Query) (Plan, core.Verdict) {
	plan, v, _, _ := p.plan(q)
	return plan, v
}

// plan is Plan plus the advisor inputs it decided with — the prediction the
// observability layer scores against the measured execution. advised is
// false when coverage forced the plan and no prediction exists.
func (p *Planner) plan(q core.Query) (plan Plan, v core.Verdict, in core.AnalyticInputs, advised bool) {
	if p.ship == nil || !p.ship.Covers(q) {
		return PlanServerData, core.Verdict{}, core.AnalyticInputs{}, false
	}
	if p.c.BreakerState() != BreakerClosed {
		// The link is tripped: a covered query runs locally regardless of
		// what the advisor would price — no NIC wakeup, no fail-fast error,
		// just the fully-client scheme the breaker degrades to.
		return PlanLocal, core.Verdict{}, core.AnalyticInputs{}, false
	}
	in = p.analyticInputs(q)
	v = in.Advise()
	offload := v.SavesCycles
	if p.obj == Energy {
		offload = v.SavesEnergy
	}
	if offload {
		return PlanServerIDs, v, in, true
	}
	return PlanLocal, v, in, true
}

// Execute plans and runs q, recording the execution as a span and scoring
// the advisor's prediction against the measured outcome when obs is enabled.
func (p *Planner) Execute(q core.Query) (Result, error) {
	var (
		sp *obs.Span
		em obs.EnergyModel
	)
	if hub := p.c.hub; hub != nil {
		sp = hub.Trace.Start(queryKindName(q.Kind))
		em = hub.Energy
	}

	planStart := time.Now()
	plan, v, in, advised := p.plan(q)
	planSec := time.Since(planStart).Seconds()
	sp.SetScheme(plan.String())
	sp.Lap(obs.StagePlan, planSec)
	j, cy := em.Compute(planSec)
	sp.Attribute(obs.StagePlan, j, cy)

	execStart := time.Now()
	res, err := p.runPlan(plan, v, q, sp, em)
	totalSec := planSec + time.Since(execStart).Seconds()
	if err != nil {
		sp.SetErr()
	}

	// Score and record before Finish: a finished span may be recycled.
	actualJoules := sp.TotalJoules()
	m := &p.metrics
	m.plans[res.Plan].Inc()
	m.execHist[res.Plan].Observe(totalSec)
	m.joules[res.Plan].Add(actualJoules)
	if advised && res.Plan == plan && err == nil {
		predSec := in.FullyLocalCycles() / in.ClientHz
		predJoules := in.FullyLocalJoules()
		if plan == PlanServerIDs {
			predSec = in.PartitionedCycles() / in.ClientHz
			predJoules = in.PartitionedJoules()
		}
		if totalSec > 0 {
			m.cycleRatio[plan].Observe(predSec / totalSec)
		}
		if actualJoules > 0 {
			m.energyRatio[plan].Observe(predJoules / actualJoules)
		}
	}
	sp.Finish()
	return res, err
}

// runPlan executes one chosen plan, clocking the span stages and pricing
// them with the energy model.
func (p *Planner) runPlan(plan Plan, v core.Verdict, q core.Query, sp *obs.Span, em obs.EnergyModel) (Result, error) {
	bw := p.c.Link().BandwidthBps
	switch plan {
	case PlanLocal:
		start := time.Now()
		recs, err := p.ship.Answer(q, p.eps)
		sec := time.Since(start).Seconds()
		sp.Lap(obs.StageIndexWalk, sec)
		j, cy := em.Compute(sec)
		sp.Attribute(obs.StageIndexWalk, j, cy)
		return Result{Plan: plan, Records: recs, Verdict: v}, err
	case PlanServerIDs:
		start := time.Now()
		ids, err := p.serverIDs(q)
		netSec := time.Since(start).Seconds()
		attributeWire(sp, em, netSec,
			proto.QueryRequestBytes, proto.IDListBytes(len(ids)), bw)
		if err != nil {
			return Result{Plan: plan}, err
		}
		replyStart := time.Now()
		recs := make([]proto.Record, 0, len(ids))
		for _, id := range ids {
			if r, ok := p.ship.Record(id); ok {
				recs = append(recs, r)
			} else {
				// The server knows records the shipment lacks (it can
				// happen only on uncovered queries, which don't take this
				// plan; kept as a safety net): fall back to full records.
				sp.SetScheme(PlanServerData.String())
				fullStart := time.Now()
				full, ferr := p.serverData(q)
				attributeWire(sp, em, time.Since(fullStart).Seconds(),
					proto.QueryRequestBytes,
					proto.DataListBytes(len(full), proto.WireRecordBytes), bw)
				return Result{Plan: PlanServerData, Records: full, Verdict: v}, ferr
			}
		}
		replySec := time.Since(replyStart).Seconds()
		sp.Lap(obs.StageReply, replySec)
		j, cy := em.Compute(replySec)
		sp.Attribute(obs.StageReply, j, cy)
		return Result{Plan: plan, Records: recs, Verdict: v}, nil
	default:
		start := time.Now()
		recs, err := p.serverData(q)
		attributeWire(sp, em, time.Since(start).Seconds(),
			proto.QueryRequestBytes,
			proto.DataListBytes(len(recs), proto.WireRecordBytes), bw)
		return Result{Plan: plan, Records: recs, Verdict: v}, err
	}
}

func (p *Planner) serverIDs(q core.Query) ([]uint32, error) {
	switch q.Kind {
	case core.PointQuery:
		return p.c.PointIDs(q.Point, p.eps)
	case core.RangeQuery:
		return p.c.RangeIDs(q.Window)
	default:
		ids, _, err := p.c.query(&proto.QueryMsg{
			Kind: proto.KindNN, Mode: proto.ModeIDs, Point: q.Point, K: uint16(q.K)})
		return ids, err
	}
}

func (p *Planner) serverData(q core.Query) ([]proto.Record, error) {
	switch q.Kind {
	case core.PointQuery:
		return p.c.Point(q.Point, p.eps)
	case core.RangeQuery:
		return p.c.Range(q.Window)
	default:
		k := q.K
		if k < 1 {
			k = 1
		}
		return p.c.KNearest(q.Point, k)
	}
}

// estimateWork predicts the filtering/refinement volume of q against the
// shipment: node visits from the sub-tree shape, candidates from the
// shipment's spatial density (range) or small constants (point/NN).
func (p *Planner) estimateWork(q core.Query) (nodeVisits, candidates, hits float64) {
	t := p.ship.Tree
	height := float64(t.Height())
	fanout := float64(t.Fanout())
	n := float64(t.Len())

	switch q.Kind {
	case core.RangeQuery:
		cov := p.ship.Coverage
		frac := 0.0
		if a := cov.Area(); a > 0 {
			frac = q.Window.Intersection(cov).Area() / a
		}
		candidates = n * frac
		if candidates < 1 {
			candidates = 1
		}
		hits = candidates
	default:
		k := float64(q.K)
		if k < 1 {
			k = 1
		}
		// A point stabs a handful of leaf MBRs; NN visits a few more.
		candidates = 4 + 2*k
		hits = k
	}
	nodeVisits = height + candidates/fanout
	return nodeVisits, candidates, hits
}

// analyticInputs builds the §4.1 advisor inputs for "local against the
// shipment" versus "offload, ids back" under the measured link.
func (p *Planner) analyticInputs(q core.Query) core.AnalyticInputs {
	m := p.model
	link := p.c.Link()
	bw := link.BandwidthBps
	if bw <= 0 {
		// No bandwidth estimate yet: assume the paper's base 2 Mbps.
		bw = 2e6
	}
	nodeVisits, candidates, hits := p.estimateWork(q)

	// Fully-local: filter + refine at the client.
	cFullyLocal := nodeVisits*m.CyclesPerNodeVisit + candidates*m.CyclesPerCandidate

	// Offloaded: the server does the same logical work at its clock; the
	// reply carries ids only (the shipment holds the records). The
	// client-observed wait folds the measured RTT into Cw2.
	cw2 := nodeVisits*m.CyclesPerNodeVisit + candidates*m.CyclesPerCandidate +
		link.RTT.Seconds()*m.ServerHz

	// Wire pricing. Unbatched, one query pays a full request frame and a
	// full reply frame. Batched (SetBatch), B queries share one
	// request/reply exchange, so the per-query bits and protocol cycles are
	// the batch totals over B — the §4.1 model's per-exchange terms
	// amortized exactly the way MsgBatchQuery amortizes them on the wire.
	batch := p.batch
	if batch < 1 {
		batch = 1
	}
	var tx, rx proto.Transfer
	if batch > 1 {
		tx = proto.Packetize(proto.BatchQueryBytes(batch))
		rx = proto.Packetize(proto.BatchIDListBytes(batch, batch*int(hits)))
	} else {
		tx = proto.Packetize(proto.QueryRequestBytes)
		rx = proto.Packetize(proto.IDListBytes(int(hits)))
	}
	b := float64(batch)
	cProtocol := (float64(tx.Packets+rx.Packets)*m.CyclesPerProtoPacket +
		float64(tx.PayloadBytes+rx.PayloadBytes)*m.CyclesPerProtoByte) / b
	cLocal := hits * m.CyclesPerResultID

	return core.AnalyticInputs{
		BandwidthBps: bw,
		CFullyLocal:  cFullyLocal,
		CLocal:       cLocal,
		CProtocol:    cProtocol,
		CW2:          cw2,
		ClientHz:     m.ClientHz,
		ServerHz:     m.ServerHz,
		PacketTxBits: float64(tx.WireBytes*8) / b,
		PacketRxBits: float64(rx.WireBytes*8) / b,
		PClient:      m.PClient,
		PTx:          m.PTx,
		PRx:          m.PRx,
		PIdle:        m.PIdle,
		PSleep:       m.PSleep,
		PBlocked:     m.PBlocked,
	}
}
