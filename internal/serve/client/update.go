// update.go: the client write path — live inserts, deletes, and moves
// against an updatable server. Updates ride the same single-exchange
// machinery as queries (pooled request messages, breaker, bounded retries);
// retrying a write is safe because the server's update semantics are
// idempotent upserts/deletes, and the ack carries the owning shard's base
// epoch so a caller can measure how far behind the packed base its write
// landed.
package client

import (
	"fmt"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
)

// UpdateAck is one acknowledged write: the owning shard's base epoch at
// apply time (the write folds into the packed base at Epoch+1 or later),
// whether a previous version of the object was visible, and whether the
// answering server owns the object's position (false when a replicated
// write merely cleared a stale copy on a non-owning server).
type UpdateAck struct {
	Epoch   uint64
	Existed bool
	Owned   bool
}

// Insert upserts object id at seg.
func (c *Client) Insert(id uint32, seg geom.Segment) (UpdateAck, error) {
	m := proto.AcquireInsert()
	m.ObjID, m.Seg = id, seg
	m.ID = c.id()
	m.TimeoutMicros = c.timeoutMicros()
	resp, err := c.do(m)
	proto.ReleaseMessage(m)
	return c.decodeAck(resp, err)
}

// Delete removes object id wherever it lives; deleting an unknown id
// succeeds with Existed=false.
func (c *Client) Delete(id uint32) (UpdateAck, error) {
	m := proto.AcquireDelete()
	m.ObjID = id
	m.ID = c.id()
	m.TimeoutMicros = c.timeoutMicros()
	resp, err := c.do(m)
	proto.ReleaseMessage(m)
	return c.decodeAck(resp, err)
}

// Move updates object id's geometry to seg — the moving-object workload's
// hot write.
func (c *Client) Move(id uint32, seg geom.Segment) (UpdateAck, error) {
	m := proto.AcquireMove()
	m.ObjID, m.Seg = id, seg
	m.ID = c.id()
	m.TimeoutMicros = c.timeoutMicros()
	resp, err := c.do(m)
	proto.ReleaseMessage(m)
	return c.decodeAck(resp, err)
}

func (c *Client) decodeAck(resp proto.Message, err error) (UpdateAck, error) {
	c.wire.queries.Add(1)
	if err != nil {
		return UpdateAck{}, err
	}
	switch r := resp.(type) {
	case *proto.UpdateAckMsg:
		ack := UpdateAck{Epoch: r.Epoch, Existed: r.Existed, Owned: r.Owned}
		proto.ReleaseMessage(r)
		return ack, nil
	case *proto.ErrorMsg:
		return UpdateAck{}, r
	}
	return UpdateAck{}, fmt.Errorf("client: unexpected %v reply to update", resp.Type())
}
