// backoff_test.go: package-internal tests for the retry backoff computation
// and the circuit-breaker state machine.
package client

import (
	"testing"
	"time"
)

// TestBackoffDelayNoOverflow is the regression test for the retry-path
// overflow bug: the old `base << uint(attempt)` went negative once the shift
// passed ~40 with millisecond bases, turning the retry sleep into a hot
// loop. Attempt counts far past 64 must keep yielding sleeps in [0, max].
func TestBackoffDelayNoOverflow(t *testing.T) {
	const base, max = 2 * time.Millisecond, 250 * time.Millisecond
	for attempt := 0; attempt <= 200; attempt++ {
		for _, u := range []float64{0, 0.5, 0.999999} {
			d := backoffDelay(base, max, attempt, u)
			if d < 0 {
				t.Fatalf("attempt %d u=%v: negative delay %v", attempt, u, d)
			}
			if d >= max {
				t.Fatalf("attempt %d u=%v: delay %v >= max %v", attempt, u, d, max)
			}
		}
	}
	// Deep attempts with u near 1 must sit just under the cap, not at zero:
	// the exponential ceiling saturates at max instead of wrapping.
	if d := backoffDelay(base, max, 100, 0.999999); d < max/2 {
		t.Fatalf("attempt 100 delay %v collapsed; want ~%v", d, max)
	}
}

// TestBackoffDelayFullJitter verifies the delay is uniform-in-[0, ceiling):
// u scales the exponential ceiling directly, so u=0 sleeps zero (that is
// what de-synchronizes retry herds) and u≈1 sleeps the whole ceiling.
func TestBackoffDelayFullJitter(t *testing.T) {
	const base, max = 4 * time.Millisecond, 256 * time.Millisecond
	if d := backoffDelay(base, max, 3, 0); d != 0 {
		t.Fatalf("u=0 slept %v, want 0", d)
	}
	// attempt 3 → ceiling base*8 = 32ms; u=0.5 → 16ms.
	if d := backoffDelay(base, max, 3, 0.5); d != 16*time.Millisecond {
		t.Fatalf("u=0.5 attempt 3 slept %v, want 16ms", d)
	}
	// Ceiling growth: attempt 0 is bounded by base.
	if d := backoffDelay(base, max, 0, 0.999); d >= base {
		t.Fatalf("attempt 0 slept %v, want < %v", d, base)
	}
	if backoffDelay(0, max, 5, 0.5) != 0 || backoffDelay(base, 0, 5, 0.5) != 0 {
		t.Fatal("degenerate base/max must sleep 0")
	}
}

// TestBreakerTripAndProbe walks the state machine: threshold consecutive
// failures trip Closed→Open, requests fail fast while open, the first
// caller past ProbeInterval wins the half-open probe slot, and the probe's
// outcome decides between Closed and another Open interval.
func TestBreakerTripAndProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{Enabled: true, FailureThreshold: 3, ProbeInterval: time.Hour})
	now := time.Now()

	if ok, probe := b.allow(now); !ok || probe {
		t.Fatalf("closed breaker: allow = %v, %v", ok, probe)
	}
	if b.onFailure(now) || b.onFailure(now) {
		t.Fatal("tripped before threshold")
	}
	if !b.onFailure(now) {
		t.Fatal("third failure did not trip")
	}
	if st, trips, _, _ := b.snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("after trip: state=%v trips=%d", st, trips)
	}
	if ok, _ := b.allow(now); ok {
		t.Fatal("open breaker allowed a request before ProbeInterval")
	}

	// Past the interval: exactly one caller wins the probe slot.
	later := now.Add(2 * time.Hour)
	ok, probe := b.allow(later)
	if !ok || !probe {
		t.Fatalf("first caller past interval: allow = %v, %v", ok, probe)
	}
	if ok, _ := b.allow(later); ok {
		t.Fatal("second caller raced into the half-open slot")
	}

	// Failed probe re-opens for another interval.
	b.probeResult(false, later)
	if st, _, _, fails := b.snapshot(); st != BreakerOpen || fails != 1 {
		t.Fatalf("after failed probe: state=%v probeFails=%d", st, fails)
	}

	// Successful probe re-closes and resets the failure count.
	evenLater := later.Add(2 * time.Hour)
	if ok, probe := b.allow(evenLater); !ok || !probe {
		t.Fatal("no probe slot after failed probe interval")
	}
	b.probeResult(true, evenLater)
	if st, _, probes, _ := b.snapshot(); st != BreakerClosed || probes != 2 {
		t.Fatalf("after successful probe: state=%v probes=%d", st, probes)
	}
	// A fresh failure streak is needed to trip again.
	if b.onFailure(evenLater) || b.onFailure(evenLater) {
		t.Fatal("stale failure count survived re-close")
	}
}

// TestBreakerSuccessResetsStreak verifies intermittent failures never trip:
// any success while closed zeroes the consecutive-failure count.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newBreaker(BreakerConfig{Enabled: true, FailureThreshold: 2, ProbeInterval: time.Hour})
	now := time.Now()
	for i := 0; i < 10; i++ {
		if b.onFailure(now) {
			t.Fatalf("iteration %d: single failure tripped threshold-2 breaker", i)
		}
		b.onSuccess()
	}
	if st, _, _, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

// TestBreakerDisabled verifies the zero-config breaker is transparent: every
// request allowed, no state transitions, nil-safe.
func TestBreakerDisabled(t *testing.T) {
	for _, b := range []*breaker{nil, newBreaker(BreakerConfig{})} {
		now := time.Now()
		for i := 0; i < 20; i++ {
			if b.onFailure(now) {
				t.Fatal("disabled breaker tripped")
			}
		}
		if ok, probe := b.allow(now); !ok || probe {
			t.Fatalf("disabled breaker: allow = %v, %v", ok, probe)
		}
	}
}
