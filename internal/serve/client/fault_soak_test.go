// fault_soak_test.go: the degraded-link acceptance tests. A real server and
// a real client talk across an internal/faultlink injector, and the suite
// asserts the contract the breaker and fallback exist for: under drops,
// stalls, resets, and total outages, every query either succeeds, fails
// cleanly within its time budget, or is answered by the local fallback —
// never a hang, never a corrupted pooled message.
package client_test

import (
	"errors"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/faultlink"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
)

// faultWorld builds a dataset, its worker pool, and a live server, returning
// the pool (for local fallbacks and ground-truth answers) and the address.
func faultWorld(t testing.TB) (*dataset.Dataset, *parallel.Pool, string) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "fault-soak",
		NumSegments:    4000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 20000, Y: 20000}},
		Clusters:       4,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.25,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 160},
		GridBias:       0.6,
		Seed:           41,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pool, err := parallel.New(ds, tree, 0)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	srv, err := serve.New(serve.Config{Pool: pool, Master: tree})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return ds, pool, lis.Addr().String()
}

// faultClient builds a client dialing through inj, with the breaker and
// (optionally) a full-pool local fallback.
func faultClient(t testing.TB, addr string, inj *faultlink.Injector, pool *parallel.Pool, withFallback bool) *client.Client {
	t.Helper()
	cfg := client.Config{
		Addr:           addr,
		Conns:          4,
		DialTimeout:    time.Second,
		RequestTimeout: 300 * time.Millisecond,
		MaxRetries:     2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     10 * time.Millisecond,
		Breaker: client.BreakerConfig{
			Enabled:          true,
			FailureThreshold: 3,
			ProbeInterval:    100 * time.Millisecond,
		},
		Dial: inj.DialFunc(nil),
	}
	if withFallback {
		cfg.Fallback = client.NewPoolFallback(pool)
	}
	c, err := client.New(cfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// soakWindow deterministically places the i-th range query.
func soakWindow(ds *dataset.Dataset, i int) geom.Rect {
	c := ds.Extent.Center()
	off := float64(i%7) * 150
	return geom.Rect{
		Min: geom.Point{X: c.X - 900 + off, Y: c.Y - 900 - off},
		Max: geom.Point{X: c.X + 900 + off, Y: c.Y + 900 - off},
	}
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFaultSoak pipelines single and batched queries through lossy and
// stall-heavy links under -race. The invariant: every operation returns
// within its retry budget — success, clean failure, or local fallback — and
// successful range answers always match the pool's ground truth, proving no
// pooled message was corrupted along any retry or fallback path.
func TestFaultSoak(t *testing.T) {
	ds, pool, addr := faultWorld(t)

	profiles := map[string]faultlink.Profile{
		"lossy": {Seed: 7, DropProb: 0.05, ResetProb: 0.03,
			Latency: time.Millisecond, Jitter: time.Millisecond},
		"stall": {Seed: 11, StallProb: 0.10, StallFor: 80 * time.Millisecond},
	}
	// One op may burn MaxRetries+1 attempts of RequestTimeout plus backoff;
	// anything past that budget is a hang.
	const opBudget = 3*300*time.Millisecond + 500*time.Millisecond

	for name, prof := range profiles {
		prof := prof
		t.Run(name, func(t *testing.T) {
			inj := faultlink.New(prof)
			c := faultClient(t, addr, inj, pool, true)

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var sc parallel.Scratch
					for i := 0; i < 30; i++ {
						start := time.Now()
						switch i % 3 {
						case 0:
							w := soakWindow(ds, g*30+i)
							ids, err := c.RangeIDs(w)
							if err == nil {
								want := sortedIDs(pool.RangeAppend(nil, w))
								if !equalIDs(sortedIDs(ids), want) {
									t.Errorf("range answer diverged from ground truth: got %d ids, want %d", len(ids), len(want))
								}
							}
						case 1:
							p := ds.Seg(uint32((g*31 + i) % ds.Len())).A
							if recs, err := c.Point(p, core.PointEps); err == nil && len(recs) == 0 {
								t.Errorf("point query on a segment endpoint found nothing")
							}
						default:
							p := ds.Extent.Center()
							if nn := pool.NearestWith(p, &sc); nn.OK {
								if recs, err := c.KNearest(p, 3); err == nil && len(recs) == 0 {
									t.Errorf("kNN on a non-empty dataset found nothing")
								}
							}
						}
						if el := time.Since(start); el > opBudget {
							t.Errorf("op %d/%d took %v — past the %v retry budget (hang)", g, i, el, opBudget)
						}
						// Every 10th iteration exercises the batched path.
						if i%10 == 9 {
							qs := []proto.QueryMsg{
								{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: soakWindow(ds, i)},
								{Kind: proto.KindPoint, Mode: proto.ModeData, Point: ds.Seg(uint32(i)).A, Eps: core.PointEps},
							}
							start := time.Now()
							res, err := c.QueryBatch(qs)
							if err == nil && len(res) != 2 {
								t.Errorf("batch returned %d results for 2 queries", len(res))
							}
							if el := time.Since(start); el > opBudget {
								t.Errorf("batch took %v — past the %v retry budget (hang)", el, opBudget)
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

// TestFaultOutageFallbackCompletes is the headline acceptance test: under a
// scripted total outage, a fallback-equipped client completes 100% of point,
// range, and NN queries locally, with answers identical to the pool's ground
// truth, and the breaker trips open so the radio is left alone.
func TestFaultOutageFallbackCompletes(t *testing.T) {
	ds, pool, addr := faultWorld(t)
	inj := faultlink.New(faultlink.Profile{Seed: 3})
	c := faultClient(t, addr, inj, pool, true)
	inj.ForceOutage(true)

	var sc parallel.Scratch
	const n = 60
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			w := soakWindow(ds, i)
			ids, err := c.RangeIDs(w)
			if err != nil {
				t.Fatalf("range %d failed during outage despite fallback: %v", i, err)
			}
			if want := sortedIDs(pool.RangeAppend(nil, w)); !equalIDs(sortedIDs(ids), want) {
				t.Fatalf("range %d: fallback answer diverged (%d ids, want %d)", i, len(ids), len(want))
			}
		case 1:
			p := ds.Seg(uint32(i * 13 % ds.Len())).A
			recs, err := c.Point(p, core.PointEps)
			if err != nil {
				t.Fatalf("point %d failed during outage despite fallback: %v", i, err)
			}
			if len(recs) == 0 {
				t.Fatalf("point %d: fallback found nothing at a segment endpoint", i)
			}
		default:
			p := ds.Extent.Center()
			recs, err := c.KNearest(p, 5)
			if err != nil {
				t.Fatalf("kNN %d failed during outage despite fallback: %v", i, err)
			}
			want, ok := pool.KNearestAppend(nil, p, 5, &sc)
			if !ok {
				t.Fatal("pool kNN unsupported")
			}
			if len(recs) != len(want) {
				t.Fatalf("kNN %d: fallback returned %d, pool %d", i, len(recs), len(want))
			}
			for j := range want {
				if recs[j].ID != want[j].ID {
					t.Fatalf("kNN %d: rank %d = id %d, pool says %d", i, j, recs[j].ID, want[j].ID)
				}
			}
		}
	}

	// Batched queries complete locally too.
	res, err := c.QueryBatch([]proto.QueryMsg{
		{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: soakWindow(ds, 1)},
		{Kind: proto.KindPoint, Mode: proto.ModeData, Point: ds.Seg(7).A, Eps: core.PointEps},
	})
	if err != nil {
		t.Fatalf("batch failed during outage despite fallback: %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("batch item %d failed during outage: %v", i, r.Err)
		}
	}

	d := c.Degraded()
	if d.Breaker != client.BreakerOpen {
		t.Fatalf("breaker = %v after sustained outage, want open", d.Breaker)
	}
	if d.Trips == 0 {
		t.Fatal("breaker never tripped")
	}
	if d.Fallbacks < n {
		t.Fatalf("fallbacks = %d, want >= %d (every query answered locally)", d.Fallbacks, n)
	}
	if d.FallbackJoules <= 0 {
		t.Fatalf("fallback energy not accounted: %+v", d)
	}
}

// TestFaultBreakerRecovery verifies the half-open probe path: when the link
// returns, the breaker re-closes within roughly one probe interval and
// queries go back to the server.
func TestFaultBreakerRecovery(t *testing.T) {
	ds, pool, addr := faultWorld(t)
	inj := faultlink.New(faultlink.Profile{Seed: 5})
	c := faultClient(t, addr, inj, pool, true)

	// Trip the breaker under a forced outage.
	inj.ForceOutage(true)
	for i := 0; i < 6 && c.BreakerState() != client.BreakerOpen; i++ {
		c.RangeIDs(soakWindow(ds, i)) // answered locally; failures feed the breaker
	}
	if c.BreakerState() != client.BreakerOpen {
		t.Fatalf("breaker = %v after outage traffic, want open", c.BreakerState())
	}

	// Restore the link; keep querying until a probe re-closes the breaker.
	inj.ForceOutage(false)
	restored := time.Now()
	const probeInterval = 100 * time.Millisecond
	deadline := restored.Add(probeInterval + 900*time.Millisecond)
	for c.BreakerState() != client.BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker still %v %v after link returned", c.BreakerState(), time.Since(restored))
		}
		if _, err := c.RangeIDs(soakWindow(ds, 2)); err != nil {
			t.Fatalf("query failed after link restore: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d := c.Degraded()
	if d.Probes == 0 {
		t.Fatal("breaker re-closed without a probe")
	}
	// Healthy again: a fresh query must reach the server, not the fallback.
	before := c.Degraded().Fallbacks
	if _, err := c.RangeIDs(soakWindow(ds, 3)); err != nil {
		t.Fatalf("post-recovery query failed: %v", err)
	}
	if c.Degraded().Fallbacks != before {
		t.Fatal("post-recovery query was answered by the fallback")
	}
}

// TestFaultNoFallbackFailsFast verifies the other half of the contract:
// without a fallback, a dead link means fast clean errors — ErrBreakerOpen
// in microseconds once tripped — never a hang and never a success.
func TestFaultNoFallbackFailsFast(t *testing.T) {
	ds, pool, addr := faultWorld(t)
	inj := faultlink.New(faultlink.Profile{Seed: 9})
	c := faultClient(t, addr, inj, pool, false)
	inj.ForceOutage(true)

	// First queries burn real attempts until the threshold trips the breaker.
	for i := 0; i < 4; i++ {
		if _, err := c.RangeIDs(soakWindow(ds, i)); err == nil {
			t.Fatal("query succeeded during a forced outage with no fallback")
		}
	}
	if c.BreakerState() != client.BreakerOpen {
		t.Fatalf("breaker = %v, want open", c.BreakerState())
	}
	// Tripped: failures are now immediate and typed.
	start := time.Now()
	_, err := c.RangeIDs(soakWindow(ds, 9))
	elapsed := time.Since(start)
	if !errors.Is(err, client.ErrBreakerOpen) {
		t.Fatalf("open-breaker error = %v, want ErrBreakerOpen", err)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("open-breaker failure took %v, want fail-fast", elapsed)
	}
}

// TestFaultBatchResultsSurviveRelease is the pooled-message aliasing
// regression test. QueryBatch's contract: returned IDs and Records are
// caller-owned copies, and the pooled BatchReplyMsg is released before
// return. The old code handed out slices aliasing the pooled reply, so the
// next decode on that connection silently rewrote earlier results. The test
// captures one batch's answers, churns the same connection with many more
// batches (forcing pool reuse), and verifies the first answers against
// ground truth computed before the churn.
func TestFaultBatchResultsSurviveRelease(t *testing.T) {
	ds, pool, addr := faultWorld(t)
	c, err := client.New(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	w := soakWindow(ds, 0)
	first, err := c.QueryBatch([]proto.QueryMsg{
		{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w},
		{Kind: proto.KindPoint, Mode: proto.ModeData, Point: ds.Seg(3).A, Eps: core.PointEps},
	})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	wantIDs := sortedIDs(pool.RangeAppend(nil, w))
	wantRecs := append([]proto.Record(nil), first[1].Records...)

	// Churn: every exchange decodes into the pooled reply the old code let
	// `first` alias.
	for i := 1; i <= 20; i++ {
		if _, err := c.QueryBatch([]proto.QueryMsg{
			{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: soakWindow(ds, i)},
			{Kind: proto.KindNN, Mode: proto.ModeData, Point: ds.Extent.Center(), K: 4},
		}); err != nil {
			t.Fatalf("churn batch %d: %v", i, err)
		}
	}

	if !equalIDs(sortedIDs(first[0].IDs), wantIDs) {
		t.Fatalf("first batch's IDs were rewritten by later exchanges: %d ids, want %d", len(first[0].IDs), len(wantIDs))
	}
	if len(first[1].Records) != len(wantRecs) {
		t.Fatalf("first batch's Records length changed: %d, want %d", len(first[1].Records), len(wantRecs))
	}
	for i := range wantRecs {
		if first[1].Records[i] != wantRecs[i] {
			t.Fatalf("first batch's Record %d was rewritten: %+v, want %+v", i, first[1].Records[i], wantRecs[i])
		}
	}
}

// BenchmarkBreakerCleanPath prices the breaker's overhead on a healthy
// link: the allow/onSuccess gate added to every round trip.
func BenchmarkBreakerCleanPath(b *testing.B) {
	ds, pool, addr := faultWorld(b)
	inj := faultlink.New(faultlink.Profile{Seed: 1})
	c := faultClient(b, addr, inj, pool, true)
	p := ds.Seg(0).A
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PointIDs(p, core.PointEps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDegradedLocal prices a degraded-mode query: breaker open, answer
// served by the local pool fallback — the paper's fully-client scheme as a
// resilience path.
func BenchmarkDegradedLocal(b *testing.B) {
	ds, pool, addr := faultWorld(b)
	inj := faultlink.New(faultlink.Profile{Seed: 1})
	c := faultClient(b, addr, inj, pool, true)
	inj.ForceOutage(true)
	p := ds.Seg(0).A
	// Trip the breaker so the steady state is pure fail-fast + fallback.
	for i := 0; i < 4; i++ {
		c.PointIDs(p, core.PointEps)
	}
	if c.BreakerState() != client.BreakerOpen {
		b.Fatalf("breaker = %v, want open", c.BreakerState())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PointIDs(p, core.PointEps); err != nil {
			b.Fatal(err)
		}
	}
}
