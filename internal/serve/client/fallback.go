// fallback.go: graceful degradation to local execution. When the circuit
// breaker is open (or a request exhausts its retries), a client configured
// with a Fallback answers point, range, and NN queries from an index it
// holds locally — the paper's all-client partitioning scheme, reused as the
// disconnected-operation path instead of a planner-chosen optimum. Two
// implementations ship: a *Shipment (the budgeted sub-index of Fig. 2,
// partial coverage) and PoolFallback (a full local internal/parallel pool —
// data present at client, total coverage).
package client

import (
	"fmt"
	"sync"

	"mobispatial/internal/core"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
)

// Fallback answers queries locally when the server is unreachable. Covers
// reports whether q can be answered from local state; Answer executes it.
// Implementations must be safe for concurrent use and must return slices
// that do not alias any pooled protocol message.
type Fallback interface {
	Covers(q core.Query) bool
	Answer(q core.Query, eps float64) ([]proto.Record, error)
}

// Shipment already satisfies Fallback (Covers + Answer); assert it.
var _ Fallback = (*Shipment)(nil)

// PoolFallback answers every query from a full local worker pool — the
// all-client scheme: the whole dataset and index resident at the client, so
// coverage is total and degraded-mode answers are exact.
type PoolFallback struct {
	pool *parallel.Pool
	// scratch pools per-goroutine traversal state so concurrent degraded
	// queries don't contend or allocate NN heaps.
	scratch sync.Pool
}

// NewPoolFallback wraps pool as a Fallback.
func NewPoolFallback(pool *parallel.Pool) *PoolFallback {
	f := &PoolFallback{pool: pool}
	f.scratch.New = func() any { return &parallel.Scratch{} }
	return f
}

// Covers implements Fallback: a full local pool answers anything.
func (f *PoolFallback) Covers(core.Query) bool { return true }

// Answer implements Fallback, executing q through the local pool exactly as
// the server would.
func (f *PoolFallback) Answer(q core.Query, eps float64) ([]proto.Record, error) {
	if eps <= 0 {
		eps = core.PointEps
	}
	sc := f.scratch.Get().(*parallel.Scratch)
	defer f.scratch.Put(sc)
	var ids []uint32
	switch q.Kind {
	case core.PointQuery:
		ids = f.pool.PointAppend(nil, q.Point, eps)
	case core.RangeQuery:
		ids = f.pool.RangeAppend(nil, q.Window)
	case core.NNQuery:
		if q.K > 1 {
			nbs, ok := f.pool.KNearestAppend(nil, q.Point, q.K, sc)
			if !ok {
				return nil, fmt.Errorf("client: local index does not support k-NN")
			}
			for _, nb := range nbs {
				ids = append(ids, nb.ID)
			}
		} else if nn := f.pool.NearestWith(q.Point, sc); nn.OK {
			ids = append(ids, nn.ID)
		}
	default:
		return nil, fmt.Errorf("client: unknown query kind %v", q.Kind)
	}
	ds := f.pool.Dataset()
	recs := make([]proto.Record, len(ids))
	for i, id := range ids {
		recs[i] = proto.Record{ID: id, Seg: ds.Seg(id)}
	}
	return recs, nil
}

// coreQuery converts a wire query to the planner-level form the Fallback
// interface takes. ok is false for modes local execution cannot honor.
func coreQuery(q *proto.QueryMsg) (core.Query, bool) {
	switch q.Kind {
	case proto.KindPoint:
		return core.Point(q.Point), true
	case proto.KindRange:
		return core.Range(q.Window), true
	case proto.KindNN:
		if q.K > 1 {
			return core.KNearest(q.Point, int(q.K)), true
		}
		return core.Nearest(q.Point), true
	}
	return core.Query{}, false
}
