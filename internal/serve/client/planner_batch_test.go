package client

import (
	"testing"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
)

// batchPlanner builds a planner over a synthetic shipment without a live
// server: analyticInputs only consults the link estimate and the local
// sub-index, so the wire-pricing math can be checked in isolation.
func batchPlanner(t *testing.T) *Planner {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "batch-pricing",
		NumSegments:    2000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 20000, Y: 20000}},
		Clusters:       3,
		ClusterStdFrac: 0.1,
		UniformFrac:    0.3,
		StreetSegs:     [2]int{2, 6},
		SegLen:         [2]float64{40, 120},
		GridBias:       0.5,
		Seed:           41,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	c, err := New(Config{Addr: "127.0.0.1:1"}) // never dialed
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	c.SetLink(5*time.Millisecond, 2e6)
	p := NewPlanner(c)
	p.ship = &Shipment{Coverage: ds.Extent, Tree: tree}
	return p
}

// TestPlannerBatchAmortizesWire verifies the §4.1 inputs price batched
// offloading the way MsgBatchQuery prices it on the wire: with SetBatch(B),
// the per-query tx/rx bits and protocol cycles are the B-query exchange
// totals over B — strictly cheaper than a private frame per query, and
// matching proto's batch size model exactly.
func TestPlannerBatchAmortizesWire(t *testing.T) {
	p := batchPlanner(t)
	q := core.Query{
		Kind: core.RangeQuery,
		Window: geom.Rect{
			Min: geom.Point{X: 9000, Y: 9000},
			Max: geom.Point{X: 11000, Y: 11000},
		},
	}
	single := p.analyticInputs(q)

	const B = 16
	p.SetBatch(B)
	batched := p.analyticInputs(q)

	if batched.PacketTxBits >= single.PacketTxBits {
		t.Errorf("batched tx bits/query = %g, want < unbatched %g",
			batched.PacketTxBits, single.PacketTxBits)
	}
	if batched.PacketRxBits >= single.PacketRxBits {
		t.Errorf("batched rx bits/query = %g, want < unbatched %g",
			batched.PacketRxBits, single.PacketRxBits)
	}
	if batched.CProtocol >= single.CProtocol {
		t.Errorf("batched protocol cycles/query = %g, want < unbatched %g",
			batched.CProtocol, single.CProtocol)
	}
	// Per-query tx bits must equal the batch request's wire size over B.
	wantTx := float64(proto.Packetize(proto.BatchQueryBytes(B)).WireBytes*8) / B
	if batched.PacketTxBits != wantTx {
		t.Errorf("batched tx bits/query = %g, want BatchQueryBytes pricing %g",
			batched.PacketTxBits, wantTx)
	}
	// The work estimate itself must not change — batching amortizes the
	// exchange, it does not make the queries cheaper to execute.
	if batched.CFullyLocal != single.CFullyLocal || batched.CW2 != single.CW2 {
		t.Errorf("batching changed compute estimates: %+v vs %+v", batched, single)
	}

	// SetBatch(0) clamps back to unbatched pricing.
	p.SetBatch(0)
	restored := p.analyticInputs(q)
	if restored.PacketTxBits != single.PacketTxBits || restored.CProtocol != single.CProtocol {
		t.Errorf("SetBatch(0) did not restore unbatched pricing: %+v vs %+v", restored, single)
	}
}

// TestPlannerBatchFavorsOffload checks the advisor-visible consequence: on a
// link where unbatched offloading is marginal, batch pricing can only move
// the energy verdict toward partitioning, never away from it.
func TestPlannerBatchFavorsOffload(t *testing.T) {
	p := batchPlanner(t)
	q := core.Query{
		Kind: core.RangeQuery,
		Window: geom.Rect{
			Min: geom.Point{X: 8000, Y: 8000},
			Max: geom.Point{X: 12000, Y: 12000},
		},
	}
	single := p.analyticInputs(q).Advise()
	p.SetBatch(16)
	batched := p.analyticInputs(q).Advise()
	if batched.EnergyRatio > single.EnergyRatio {
		t.Errorf("batch pricing raised the energy ratio: %g > %g",
			batched.EnergyRatio, single.EnergyRatio)
	}
	if batched.CycleRatio > single.CycleRatio {
		t.Errorf("batch pricing raised the cycle ratio: %g > %g",
			batched.CycleRatio, single.CycleRatio)
	}
}
