package client_test

import (
	"net"
	"testing"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/mutable"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
)

// semanticDataset is the shared world for the semantic-cache tests.
func semanticDataset(t testing.TB) (*dataset.Dataset, *rtree.Tree) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "semantic-test",
		NumSegments:    8000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 50000, Y: 50000}},
		Clusters:       6,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.25,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 160},
		GridBias:       0.6,
		Seed:           23,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return ds, tree
}

// startSemServer serves pool on loopback and returns the address.
func startSemServer(t testing.TB, cfg serve.Config) string {
	t.Helper()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return lis.Addr().String()
}

// fetchWholeShipment pulls a shipment big enough to cover the whole dataset
// through a throwaway plain client.
func fetchWholeShipment(t testing.TB, addr string, ds *dataset.Dataset) *client.Shipment {
	t.Helper()
	c, err := client.New(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer c.Close()
	center := ds.Extent.Center()
	window := geom.Rect{
		Min: geom.Point{X: center.X - 2000, Y: center.Y - 2000},
		Max: geom.Point{X: center.X + 2000, Y: center.Y + 2000},
	}
	ship, err := c.FetchShipment(window, 8000*(ds.RecordBytes+rtree.EntryBytes)+1<<20, ds.RecordBytes)
	if err != nil {
		t.Fatalf("shipment: %v", err)
	}
	return ship
}

// TestSemanticCacheServesLocally is the happy path over a static pool: after
// one wire exchange primes the epoch hint, every covered non-filter query is
// answered from the shipment with the radio off — zero new exchanges, answers
// identical to the server's, and a growing saved-NIC-energy ledger.
func TestSemanticCacheServesLocally(t *testing.T) {
	ds, tree := semanticDataset(t)
	pool, err := parallel.New(ds, tree, 0)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	addr := startSemServer(t, serve.Config{Pool: pool, Master: tree})
	ship := fetchWholeShipment(t, addr, ds)
	if ship.Epoch == 0 {
		t.Fatal("static-pool shipment carries no epoch hint")
	}

	oracle, err := client.New(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	c, err := client.New(client.Config{
		Addr: addr, Conns: 1,
		Fallback:       ship,
		SemanticCache:  true,
		SemanticMaxAge: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	center := ds.Extent.Center()
	window := geom.Rect{
		Min: geom.Point{X: center.X - 1200, Y: center.Y - 1200},
		Max: geom.Point{X: center.X + 1200, Y: center.Y + 1200},
	}

	// First covered query goes to the wire: the client has no hint yet. The
	// reply primes freshness.
	before := c.WireStats().Exchanges
	primed, err := c.RangeIDs(window)
	if err != nil {
		t.Fatal(err)
	}
	if c.WireStats().Exchanges != before+1 {
		t.Fatalf("priming query did not go to the wire: exchanges %d -> %d",
			before, c.WireStats().Exchanges)
	}
	if c.Semantic().Hits != 0 {
		t.Fatalf("unprimed client answered locally: %+v", c.Semantic())
	}

	// From here on, covered queries must be local: exchanges frozen, results
	// equal to the uncached server's.
	wired := c.WireStats().Exchanges
	gotRange, err := c.RangeIDs(window)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(gotRange), sortedIDs(primed)) {
		t.Fatalf("local range disagrees with primed wire answer: %d vs %d ids",
			len(gotRange), len(primed))
	}
	recs, err := c.Range(window)
	if err != nil {
		t.Fatal(err)
	}
	wantRecs, err := oracle.Range(window)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(wantRecs) {
		t.Fatalf("local data range: %d records, server %d", len(recs), len(wantRecs))
	}
	ptIDs, err := c.PointIDs(center, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantPt, err := oracle.PointIDs(center, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(ptIDs), sortedIDs(wantPt)) {
		t.Fatalf("local point ids %v, server %v", ptIDs, wantPt)
	}
	nn, err := c.Nearest(center)
	if err != nil {
		t.Fatal(err)
	}
	wantNN, err := oracle.Nearest(center)
	if err != nil {
		t.Fatal(err)
	}
	if nn == nil || wantNN == nil || nn.ID != wantNN.ID {
		t.Fatalf("local nearest %+v, server %+v", nn, wantNN)
	}
	if got := c.WireStats().Exchanges; got != wired {
		t.Fatalf("covered queries touched the wire: exchanges %d -> %d", wired, got)
	}
	sem := c.Semantic()
	if sem.Hits < 4 {
		t.Fatalf("semantic hits = %d, want >= 4", sem.Hits)
	}
	if sem.SavedNICJoules <= 0 {
		t.Fatalf("saved NIC joules = %v, want > 0", sem.SavedNICJoules)
	}

	// Filter mode wants the server's candidate set — never local.
	if _, err := c.FilterRange(window); err != nil {
		t.Fatal(err)
	}
	// Uncovered geometry goes to the wire too.
	if _, err := c.PointIDs(geom.Point{X: ds.Extent.Max.X + 1000, Y: ds.Extent.Max.Y + 1000}, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.WireStats().Exchanges; got != wired+2 {
		t.Fatalf("filter/uncovered queries: exchanges %d -> %d, want +2", wired, got)
	}
	if c.Semantic().Hits != sem.Hits {
		t.Fatal("filter or uncovered query counted as a semantic hit")
	}
}

// TestSemanticCacheRetiresOnWrite drives the invalidation path over a mutable
// pool: a server-side write changes the epoch hint, and once the client's
// bounded-staleness window (SemanticMaxAge) lapses, the next covered query
// revalidates over the wire, observes the mismatch, and local answering stays
// off for good — the fresh answer includes the inserted record.
func TestSemanticCacheRetiresOnWrite(t *testing.T) {
	ds, tree := semanticDataset(t)
	pool, err := mutable.NewFromDataset(ds, 4, mutable.Config{CompactInterval: -1})
	if err != nil {
		t.Fatalf("mutable pool: %v", err)
	}
	t.Cleanup(pool.Close)
	addr := startSemServer(t, serve.Config{Pool: pool, Master: tree})
	ship := fetchWholeShipment(t, addr, ds) // before any write: epoch stamped
	if ship.Epoch == 0 {
		t.Fatal("unwritten mutable-pool shipment carries no epoch hint")
	}

	const maxAge = 250 * time.Millisecond
	c, err := client.New(client.Config{
		Addr: addr, Conns: 1,
		Fallback:       ship,
		SemanticCache:  true,
		SemanticMaxAge: maxAge,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	writer, err := client.New(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()

	center := ds.Extent.Center()
	window := geom.Rect{
		Min: geom.Point{X: center.X - 1500, Y: center.Y - 1500},
		Max: geom.Point{X: center.X + 1500, Y: center.Y + 1500},
	}

	// Prime over the wire, then prove a local hit works while unwritten.
	if _, err := c.RangeIDs(window); err != nil {
		t.Fatal(err)
	}
	wired := c.WireStats().Exchanges
	if _, err := c.RangeIDs(window); err != nil {
		t.Fatal(err)
	}
	if c.WireStats().Exchanges != wired || c.Semantic().Hits == 0 {
		t.Fatalf("pre-write covered query not served locally (exchanges %d -> %d, hits %d)",
			wired, c.WireStats().Exchanges, c.Semantic().Hits)
	}

	// A write lands inside the window; the live hint moves away from the
	// shipment's epoch.
	const newID = 500000
	seg := geom.Segment{
		A: geom.Point{X: center.X - 50, Y: center.Y - 50},
		B: geom.Point{X: center.X + 50, Y: center.Y + 50},
	}
	if _, err := writer.Insert(newID, seg); err != nil {
		t.Fatalf("insert: %v", err)
	}

	// The client may serve bounded-stale answers until its hint ages out;
	// after that every covered query must revalidate over the wire.
	time.Sleep(maxAge + 100*time.Millisecond)
	hits := c.Semantic().Hits
	wired = c.WireStats().Exchanges
	ids, err := c.RangeIDs(window)
	if err != nil {
		t.Fatal(err)
	}
	if c.WireStats().Exchanges != wired+1 {
		t.Fatal("post-write query with an expired hint did not revalidate over the wire")
	}
	found := false
	for _, id := range ids {
		if id == newID {
			found = true
		}
	}
	if !found {
		t.Fatalf("revalidated answer is stale: inserted id %d missing from %d ids", newID, len(ids))
	}

	// The revalidation delivered a fresh hint, but it differs from the
	// shipment's epoch — local answering stays off permanently.
	if _, err := c.RangeIDs(window); err != nil {
		t.Fatal(err)
	}
	if c.WireStats().Exchanges != wired+2 {
		t.Fatal("covered query answered locally from a retired shipment")
	}
	if c.Semantic().Hits != hits {
		t.Fatalf("semantic hits moved %d -> %d after retirement", hits, c.Semantic().Hits)
	}
}

// TestSemanticCacheRequiresEpochFallback pins the constructor contract: the
// semantic cache needs a fallback that can prove its epoch.
func TestSemanticCacheRequiresEpochFallback(t *testing.T) {
	if _, err := client.New(client.Config{Addr: "127.0.0.1:1", SemanticCache: true}); err == nil {
		t.Fatal("SemanticCache without an EpochFallback was accepted")
	}
}
