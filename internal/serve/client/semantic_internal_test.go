package client

import (
	"testing"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/proto"
)

// fakeEpochFallback is an EpochFallback with a fixed build epoch that covers
// everything — just enough surface to drive the freshness protocol directly.
type fakeEpochFallback struct{ epoch uint64 }

func (f *fakeEpochFallback) Covers(core.Query) bool { return true }
func (f *fakeEpochFallback) Answer(core.Query, float64) ([]proto.Record, error) {
	return nil, nil
}
func (f *fakeEpochFallback) EpochHint() uint64 { return f.epoch }

func semClient(t *testing.T, epoch uint64) *Client {
	t.Helper()
	c, err := New(Config{
		Addr: "127.0.0.1:1", Conns: 1,
		Fallback:       &fakeEpochFallback{epoch: epoch},
		SemanticCache:  true,
		SemanticMaxAge: time.Minute,
	})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestNoteHintOutOfOrderCannotResurrect pins the retirement protocol against
// reply reordering. Replies arrive out of order (retries, several pooled
// connections), so after a hint proves a server-side write, a DELAYED reply
// still carrying the shipment's build epoch may arrive — it must not bring
// semanticFresh back: the write it predates still happened.
func TestNoteHintOutOfOrderCannotResurrect(t *testing.T) {
	const buildEpoch = 0x1111
	const postWrite = 0x2222
	c := semClient(t, buildEpoch)
	q := core.Query{}

	if c.semanticFresh(q) {
		t.Fatal("fresh before any hint arrived")
	}
	c.noteHint(buildEpoch)
	if !c.semanticFresh(q) {
		t.Fatal("not fresh after the matching hint primed it")
	}
	c.noteHint(postWrite)
	if c.semanticFresh(q) {
		t.Fatal("fresh after a hint proved a server-side write")
	}
	// The delayed pre-write reply lands last.
	c.noteHint(buildEpoch)
	if c.semanticFresh(q) {
		t.Fatal("delayed old-epoch reply resurrected a retired shipment")
	}
	if !c.semRetired.Load() {
		t.Fatal("retirement latch not set")
	}
}

// TestNoteHintRetirementBeforePriming covers the other interleaving: the
// write-proving hint arrives before any matching hint ever primed the cache.
// The later matching hint (a delayed pre-write reply) must not prime it.
func TestNoteHintRetirementBeforePriming(t *testing.T) {
	const buildEpoch = 0x1111
	const postWrite = 0x2222
	c := semClient(t, buildEpoch)
	q := core.Query{}

	c.noteHint(postWrite)
	c.noteHint(buildEpoch)
	if c.semanticFresh(q) {
		t.Fatal("retired-before-primed shipment answered locally")
	}
}

// TestNoteHintZeroIgnored: a 0 hint carries no information — it neither
// primes nor retires.
func TestNoteHintZeroIgnored(t *testing.T) {
	const buildEpoch = 0x1111
	c := semClient(t, buildEpoch)
	q := core.Query{}

	c.noteHint(0)
	if c.semRetired.Load() {
		t.Fatal("zero hint retired the shipment")
	}
	c.noteHint(buildEpoch)
	c.noteHint(0)
	if !c.semanticFresh(q) {
		t.Fatal("zero hint disturbed a primed shipment")
	}
}
