// breaker.go: the client's circuit breaker — the mechanism that turns the
// planner's partitioning scheme choice into something that survives the
// link actually failing. Consecutive transient failures (connection errors,
// overload/shutdown replies, deadline timeouts) trip the breaker OPEN;
// while open, requests fail fast with ErrBreakerOpen — no dial, no NIC
// wakeup, no RequestTimeout burned per query — and callers with a Fallback
// degrade to local execution. After ProbeInterval the breaker HALF-OPENs:
// exactly one caller wins the right to probe the link with a ping; success
// re-CLOSEs the breaker, failure re-opens it for another interval. The
// paper's energy model is why fail-fast matters: every wasted wakeup and
// every timeout spent waiting on a dead radio is Joules the client cannot
// recover.
package client

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (possibly wrapped) when the circuit breaker is
// open and the request was not attempted on the wire.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// BreakerState is the circuit breaker's position.
type BreakerState uint8

// The breaker states.
const (
	// BreakerClosed: the link is healthy, requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive transient failures exceeded the threshold;
	// requests fail fast (or fall back locally) without touching the wire.
	BreakerOpen
	// BreakerHalfOpen: a probe is in flight; its outcome decides between
	// Closed and another Open interval.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// BreakerConfig parameterizes the client's circuit breaker.
type BreakerConfig struct {
	// Enabled turns the breaker on. Off (the default), every request rides
	// the full retry/backoff path no matter how dead the link is.
	Enabled bool
	// FailureThreshold is how many consecutive transient failures trip the
	// breaker; defaults to 5.
	FailureThreshold int
	// ProbeInterval is how long the breaker stays open before half-opening
	// with a probe ping; defaults to 500ms.
	ProbeInterval time.Duration
}

func (c *BreakerConfig) fill() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
}

// breaker is the state machine. All transitions happen under mu; the
// metrics handles are nil-safe no-ops when obs is disabled.
type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	fails     int       // consecutive transient failures while closed
	nextProbe time.Time // earliest half-open time while open

	trips, probes, probeFails uint64
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg.fill()
	return &breaker{cfg: cfg}
}

// allow gates one request attempt. Returns (true, false) to proceed
// normally, (true, true) when the caller won the half-open probe slot and
// must report the probe's outcome via probeResult, and (false, false) to
// fail fast with ErrBreakerOpen.
func (b *breaker) allow(now time.Time) (ok, probe bool) {
	if b == nil || !b.cfg.Enabled {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if now.Before(b.nextProbe) {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probes++
		return true, true
	default: // BreakerHalfOpen: someone is already probing
		return false, false
	}
}

// probeResult resolves a half-open probe.
func (b *breaker) probeResult(success bool, now time.Time) {
	if b == nil || !b.cfg.Enabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	if success {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.probeFails++
	b.state = BreakerOpen
	b.nextProbe = now.Add(b.cfg.ProbeInterval)
}

// onSuccess records a healthy exchange (any well-formed reply, errors
// included — a BadRequest still proves the link works).
func (b *breaker) onSuccess() {
	if b == nil || !b.cfg.Enabled {
		return
	}
	b.mu.Lock()
	if b.state == BreakerClosed {
		b.fails = 0
	}
	b.mu.Unlock()
}

// onFailure records one transient failure; crossing the threshold while
// closed trips the breaker open. It reports whether this failure tripped it.
func (b *breaker) onFailure(now time.Time) bool {
	if b == nil || !b.cfg.Enabled {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		return false
	}
	b.fails++
	if b.fails < b.cfg.FailureThreshold {
		return false
	}
	b.state = BreakerOpen
	b.nextProbe = now.Add(b.cfg.ProbeInterval)
	b.trips++
	return true
}

// snapshot returns the current state and counters.
func (b *breaker) snapshot() (state BreakerState, trips, probes, probeFails uint64) {
	if b == nil {
		return BreakerClosed, 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips, b.probes, b.probeFails
}
