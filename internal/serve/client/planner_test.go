package client_test

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/sim"
)

// plannerWorld builds a dataset, a live server, a client, and a planner
// whose shipment covers the dataset center generously.
func plannerWorld(t testing.TB) (*dataset.Dataset, *rtree.Tree, *client.Client, *client.Planner) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "planner-test",
		NumSegments:    8000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 50000, Y: 50000}},
		Clusters:       6,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.25,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 160},
		GridBias:       0.6,
		Seed:           23,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pool, err := parallel.New(ds, tree, 0)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	srv, err := serve.New(serve.Config{Pool: pool, Master: tree})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })

	c, err := client.New(client.Config{Addr: lis.Addr().String(), Conns: 4})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	p := client.NewPlanner(c)
	center := ds.Extent.Center()
	window := geom.Rect{
		Min: geom.Point{X: center.X - 2000, Y: center.Y - 2000},
		Max: geom.Point{X: center.X + 2000, Y: center.Y + 2000},
	}
	// A budget big enough to hold the whole dataset makes Coverage the full
	// bounds, so every test query below is covered.
	if err := p.FetchShipment(window, 8000*(ds.RecordBytes+rtree.EntryBytes)+1<<20, ds.RecordBytes); err != nil {
		t.Fatalf("shipment: %v", err)
	}
	return ds, tree, c, p
}

// TestPlannerSchemeChoice is the acceptance test: with a covered shipment
// and a realistic link, the planner answers point and NN queries fully at
// the client but offloads large range queries to the server — the paper's
// Fig. 4/5 qualitative result as a live routing decision.
func TestPlannerSchemeChoice(t *testing.T) {
	ds, _, c, p := plannerWorld(t)
	center := ds.Extent.Center()

	// A fast-RTT, high-bandwidth link (measured loopback conditions).
	c.SetLink(500*time.Microsecond, 1e9)

	pointQ := core.Point(center)
	nnQ := core.Nearest(center)
	knnQ := core.KNearest(center, 4)
	largeRange := core.Range(geom.Rect{
		Min: geom.Point{X: center.X - 20000, Y: center.Y - 20000},
		Max: geom.Point{X: center.X + 20000, Y: center.Y + 20000},
	})

	for _, tc := range []struct {
		name string
		q    core.Query
		want client.Plan
	}{
		{"point", pointQ, client.PlanLocal},
		{"nn", nnQ, client.PlanLocal},
		{"knn", knnQ, client.PlanLocal},
		{"large-range", largeRange, client.PlanServerIDs},
	} {
		if got, _ := p.Plan(tc.q); got != tc.want {
			t.Errorf("%s: plan = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Execution must agree with the plan and return correct answers.
	res, err := p.Execute(largeRange)
	if err != nil {
		t.Fatalf("execute range: %v", err)
	}
	if res.Plan != client.PlanServerIDs {
		t.Fatalf("executed plan %v", res.Plan)
	}
	serverRecs, err := c.Range(largeRange.Window)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(serverRecs) {
		t.Fatalf("hybrid plan returned %d records, server %d", len(res.Records), len(serverRecs))
	}

	resPt, err := p.Execute(pointQ)
	if err != nil {
		t.Fatalf("execute point: %v", err)
	}
	if resPt.Plan != client.PlanLocal {
		t.Fatalf("point executed as %v", resPt.Plan)
	}

	// Outside the coverage the planner must go fully-server.
	outside := core.Point(geom.Point{X: ds.Extent.Max.X + 1000, Y: ds.Extent.Max.Y + 1000})
	if got, _ := p.Plan(outside); got != client.PlanServerData {
		t.Errorf("uncovered query planned as %v", got)
	}
}

// TestPlannerTracksBandwidth checks the decision flips as the (simulated)
// link degrades: a mid-size range query offloads on a fast link but runs
// locally once the channel collapses — the liveserver example's story.
func TestPlannerTracksBandwidth(t *testing.T) {
	ds, _, c, p := plannerWorld(t)
	center := ds.Extent.Center()
	q := core.Range(geom.Rect{
		Min: geom.Point{X: center.X - 15000, Y: center.Y - 15000},
		Max: geom.Point{X: center.X + 15000, Y: center.Y + 15000},
	})

	c.SetLink(500*time.Microsecond, 1e9)
	fast, _ := p.Plan(q)
	c.SetLink(20*time.Millisecond, 50e3) // 50 kbps disaster channel
	slow, _ := p.Plan(q)
	if fast != client.PlanServerIDs || slow != client.PlanLocal {
		t.Fatalf("plan(fast)=%v plan(slow)=%v; want offload then local", fast, slow)
	}
}

// simClientCycles runs q under scheme in the full simulator at the given
// bandwidth and returns the client-observed cycles.
func simClientCycles(t *testing.T, ds *dataset.Dataset, tree *rtree.Tree,
	q core.Query, scheme core.Scheme, bwBps float64) int64 {
	t.Helper()
	params := sim.DefaultParams()
	params.BandwidthBps = bwBps
	sys, err := sim.New(params)
	if err != nil {
		t.Fatal(err)
	}
	eng := core.NewEngineWithTree(ds, tree, sys)
	if _, err := eng.Run(q, scheme, core.DataAtClient); err != nil {
		t.Fatal(err)
	}
	return sys.Result().TotalClientCycles()
}

// TestPlannerCrossValidatesSimulator compares the live planner's
// local-vs-offload choice against the full simulator's verdict for the same
// queries at the same effective bandwidth — the networked planner must agree
// with the paper's model at operating points far from the break-even
// boundary.
func TestPlannerCrossValidatesSimulator(t *testing.T) {
	ds, tree, c, p := plannerWorld(t)
	center := ds.Extent.Center()

	cases := []struct {
		name  string
		q     core.Query
		bwBps float64
		rtt   time.Duration
	}{
		// Point query on a slow paper-grade link: trivially local work
		// versus a multi-ms transfer.
		{"point@2Mbps", core.Point(center), 2e6, 5 * time.Millisecond},
		// A large range on a fast link: thousands of refinements on a
		// 125 MHz client versus a 1 GHz server and a short id transfer.
		{"range@50Mbps", core.Range(geom.Rect{
			Min: geom.Point{X: center.X - 20000, Y: center.Y - 20000},
			Max: geom.Point{X: center.X + 20000, Y: center.Y + 20000},
		}), 50e6, time.Millisecond},
	}

	for _, tc := range cases {
		local := simClientCycles(t, ds, tree, tc.q, core.FullyClient, tc.bwBps)
		server := simClientCycles(t, ds, tree, tc.q, core.FullyServer, tc.bwBps)
		simOffloads := server < local

		c.SetLink(tc.rtt, tc.bwBps)
		plan, verdict := p.Plan(tc.q)
		planOffloads := plan != client.PlanLocal

		if planOffloads != simOffloads {
			t.Errorf("%s: planner offload=%v (plan %v, cycle ratio %.3f) but simulator says offload=%v (client %d vs server %d cycles)",
				tc.name, planOffloads, plan, verdict.CycleRatio, simOffloads, local, server)
		}
	}
}

// TestPlannerLocalAnswersMatchServer verifies that for a mix of covered
// queries the locally planned answers equal the server's, whatever plan was
// chosen.
func TestPlannerLocalAnswersMatchServer(t *testing.T) {
	ds, _, c, p := plannerWorld(t)
	c.SetLink(500*time.Microsecond, 1e9)
	center := ds.Extent.Center()
	rng := rand.New(rand.NewSource(9))

	for i := 0; i < 30; i++ {
		cx := center.X + (rng.Float64()-0.5)*3000
		cy := center.Y + (rng.Float64()-0.5)*3000
		var q core.Query
		switch i % 3 {
		case 0:
			q = core.Point(geom.Point{X: cx, Y: cy})
		case 1:
			half := 100 + rng.Float64()*900
			q = core.Range(geom.Rect{
				Min: geom.Point{X: cx - half, Y: cy - half},
				Max: geom.Point{X: cx + half, Y: cy + half},
			})
		case 2:
			q = core.Nearest(geom.Point{X: cx, Y: cy})
		}
		res, err := p.Execute(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		var wantIDs []uint32
		switch q.Kind {
		case core.PointQuery:
			wantIDs, err = c.PointIDs(q.Point, 0)
		case core.RangeQuery:
			wantIDs, err = c.RangeIDs(q.Window)
		case core.NNQuery:
			nn, nerr := c.Nearest(q.Point)
			err = nerr
			if nn != nil {
				wantIDs = []uint32{nn.ID}
			}
		}
		if err != nil {
			t.Fatalf("server reference %d: %v", i, err)
		}
		got := make(map[uint32]bool, len(res.Records))
		for _, r := range res.Records {
			got[r.ID] = true
		}
		if len(got) != len(wantIDs) {
			t.Fatalf("query %d (%v, plan %v): %d records vs server's %d",
				i, q.Kind, res.Plan, len(got), len(wantIDs))
		}
		for _, id := range wantIDs {
			if !got[id] {
				t.Fatalf("query %d: missing id %d", i, id)
			}
		}
	}
}
