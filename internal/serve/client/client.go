// Package client is the mobile side of the networked service: a client
// library for the internal/serve protocol with connection pooling,
// retry-with-backoff on transient errors, and passive link measurement
// (RTT and effective bandwidth) feeding the partitioning planner — the
// live counterpart of the paper's effective-bandwidth parameter B.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
)

// Config parameterizes a Client.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns caps pooled connections (and therefore this client's
	// outstanding requests); defaults to 4.
	Conns int
	// DialTimeout defaults to 2s.
	DialTimeout time.Duration
	// RequestTimeout is the end-to-end time budget of one attempt,
	// defaults to 5s. It is also sent to the server as the per-request
	// deadline.
	RequestTimeout time.Duration
	// MaxRetries is how many times a transient failure (connection error,
	// server overload, server shutdown) is retried; defaults to 3.
	MaxRetries int
	// BackoffBase is the first retry delay, doubling per attempt;
	// defaults to 2ms.
	BackoffBase time.Duration
	// BackoffMax caps the retry delay; defaults to 250ms.
	BackoffMax time.Duration
	// Obs enables client-side observability: round-trip histograms, link
	// gauges, and the planner's per-scheme and predicted-vs-actual metrics
	// and spans all land in this hub. Nil disables instrumentation.
	Obs *obs.Hub
}

func (c *Config) fill() error {
	if c.Addr == "" {
		return fmt.Errorf("client: Config.Addr is required")
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	return nil
}

// Client is a pooled connection to one server. It is safe for concurrent
// use; up to Conns requests proceed in parallel, further callers wait for a
// connection.
type Client struct {
	cfg Config
	// sem bounds checked-out connections.
	sem chan struct{}

	mu     sync.Mutex
	idle   []*wireConn
	closed bool

	nextID atomic.Uint32
	link   linkTracker

	// Retries counts transient-failure retries (visible to load tests).
	retries atomic.Uint64
	wire    wireCounters

	hub     *obs.Hub
	metrics clientMetrics
}

// wireConn is one pooled TCP connection. A connection carries one
// outstanding request at a time; pipelining across requests happens by
// holding several connections.
type wireConn struct {
	nc net.Conn
	br *bufio.Reader
}

// New builds a Client. No connection is dialed until the first request.
func New(cfg Config) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Client{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Conns),
		hub:     cfg.Obs,
		metrics: newClientMetrics(cfg.Obs),
	}, nil
}

// Close closes all pooled connections. In-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, wc := range idle {
		wc.nc.Close()
	}
	return nil
}

// Retries returns the cumulative number of transient-failure retries.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// wireCounters tracks the physical cost of the client's traffic.
type wireCounters struct {
	framesTx, framesRx, bytesTx, bytesRx, exchanges, queries atomic.Uint64
}

// WireStats is a snapshot of the client's cumulative wire-level counters:
// frames and bytes in each direction, round-trip exchanges (every request
// kind, pings included), and the logical queries those exchanges carried.
// Queries/Exchanges > 1 means batching is amortizing the per-exchange cost —
// the quantity the paper's energy model prices as a NIC wakeup.
type WireStats struct {
	FramesTx, FramesRx uint64
	BytesTx, BytesRx   uint64
	Exchanges          uint64
	Queries            uint64
}

// WireStats returns the client's cumulative wire counters.
func (c *Client) WireStats() WireStats {
	return WireStats{
		FramesTx:  c.wire.framesTx.Load(),
		FramesRx:  c.wire.framesRx.Load(),
		BytesTx:   c.wire.bytesTx.Load(),
		BytesRx:   c.wire.bytesRx.Load(),
		Exchanges: c.wire.exchanges.Load(),
		Queries:   c.wire.queries.Load(),
	}
}

// checkout acquires a pooled connection, dialing a fresh one if the pool has
// capacity but no idle connection.
func (c *Client) checkout() (*wireConn, error) {
	c.sem <- struct{}{}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sem
		return nil, fmt.Errorf("client: closed")
	}
	var wc *wireConn
	if n := len(c.idle); n > 0 {
		wc = c.idle[n-1]
		c.idle = c.idle[:n-1]
	}
	c.mu.Unlock()
	if wc != nil {
		return wc, nil
	}
	nc, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		<-c.sem
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &wireConn{nc: nc, br: bufio.NewReaderSize(nc, 64<<10)}, nil
}

// checkin returns a healthy connection to the pool.
func (c *Client) checkin(wc *wireConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		wc.nc.Close()
	} else {
		c.idle = append(c.idle, wc)
		c.mu.Unlock()
	}
	<-c.sem
}

// discard drops a broken connection.
func (c *Client) discard(wc *wireConn) {
	wc.nc.Close()
	<-c.sem
}

// transientCode reports whether a server error invites a retry.
func transientCode(code proto.ErrCode) bool {
	return code == proto.CodeOverload || code == proto.CodeShutdown
}

// do sends req and returns the matching response, retrying transient
// failures with exponential backoff on a fresh connection.
func (c *Client) do(req proto.Message) (proto.Message, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTrip(req)
		if err == nil {
			if em, ok := resp.(*proto.ErrorMsg); ok && transientCode(em.Code) {
				lastErr = em
			} else {
				return resp, nil
			}
		} else {
			lastErr = err
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, fmt.Errorf("client: %d attempts failed: %w", attempt+1, lastErr)
		}
		c.retries.Add(1)
		c.metrics.retries.Inc()
		backoff := c.cfg.BackoffBase << uint(attempt)
		if backoff > c.cfg.BackoffMax {
			backoff = c.cfg.BackoffMax
		}
		time.Sleep(backoff)
	}
}

// roundTrip performs one attempt on one pooled connection and feeds the link
// tracker.
func (c *Client) roundTrip(req proto.Message) (proto.Message, error) {
	wc, err := c.checkout()
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	wc.nc.SetDeadline(deadline)

	start := time.Now()
	sentBytes, err := proto.WriteMessage(wc.nc, req)
	if err != nil {
		c.discard(wc)
		return nil, fmt.Errorf("client: write: %w", err)
	}
	resp, respBytes, err := c.readResponse(wc, req.RequestID())
	if err != nil {
		c.discard(wc)
		return nil, err
	}
	elapsed := time.Since(start)
	c.link.observe(elapsed, sentBytes+respBytes)
	c.checkin(wc)
	c.wire.framesTx.Add(1)
	c.wire.framesRx.Add(1)
	c.wire.bytesTx.Add(uint64(sentBytes))
	c.wire.bytesRx.Add(uint64(respBytes))
	c.wire.exchanges.Add(1)
	if c.hub != nil {
		c.metrics.rtHist.Observe(elapsed.Seconds())
		c.metrics.txBytes.Add(uint64(sentBytes))
		c.metrics.rxBytes.Add(uint64(respBytes))
		est := c.link.estimate()
		c.metrics.rttG.Set(est.RTT.Seconds())
		c.metrics.bwG.Set(est.BandwidthBps)
	}
	return resp, nil
}

// readResponse reads the response for id. With one outstanding request per
// connection, the next frame must be ours; anything else is a protocol
// violation and poisons the connection.
func (c *Client) readResponse(wc *wireConn, id uint32) (proto.Message, int, error) {
	resp, n, err := proto.ReadMessage(wc.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, fmt.Errorf("client: connection closed by server: %w", err)
		}
		return nil, 0, fmt.Errorf("client: read: %w", err)
	}
	if resp.RequestID() != id {
		return nil, 0, fmt.Errorf("client: response id %d for request %d", resp.RequestID(), id)
	}
	return resp, n, nil
}

func (c *Client) id() uint32 { return c.nextID.Add(1) }

func (c *Client) timeoutMicros() uint32 {
	us := c.cfg.RequestTimeout.Microseconds()
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}

// query runs one query and decodes the reply for the requested mode. It
// owns q: the pooled request message is released after the exchange, so the
// steady-state request path reuses one QueryMsg and one encode buffer per
// connection instead of allocating them. Replies are NOT released — their
// slices are handed to the caller.
func (c *Client) query(q *proto.QueryMsg) ([]uint32, []proto.Record, error) {
	q.ID = c.id()
	q.TimeoutMicros = c.timeoutMicros()
	resp, err := c.do(q)
	proto.ReleaseMessage(q)
	c.wire.queries.Add(1)
	if err != nil {
		return nil, nil, err
	}
	switch r := resp.(type) {
	case *proto.IDListMsg:
		return r.IDs, nil, nil
	case *proto.DataListMsg:
		ids := make([]uint32, len(r.Records))
		for i, rec := range r.Records {
			ids[i] = rec.ID
		}
		return ids, r.Records, nil
	case *proto.ErrorMsg:
		return nil, nil, r
	}
	return nil, nil, fmt.Errorf("client: unexpected %v reply to query", resp.Type())
}

// Range answers a window query, returning full records (fully-server, data
// absent at client).
func (c *Client) Range(w geom.Rect) ([]proto.Record, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Window = proto.KindRange, proto.ModeData, w
	_, recs, err := c.query(q)
	return recs, err
}

// RangeIDs answers a window query, returning ids only (fully-server, data
// present at client — §6.1.1).
func (c *Client) RangeIDs(w geom.Rect) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Window = proto.KindRange, proto.ModeIDs, w
	ids, _, err := c.query(q)
	return ids, err
}

// FilterRange returns the server's candidate ids for a window — the server
// half of filter-server/refine-client.
func (c *Client) FilterRange(w geom.Rect) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Window = proto.KindRange, proto.ModeFilter, w
	ids, _, err := c.query(q)
	return ids, err
}

// Point answers a point query with tolerance eps (0 = server default),
// returning full records.
func (c *Client) Point(p geom.Point, eps float64) ([]proto.Record, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point, q.Eps = proto.KindPoint, proto.ModeData, p, eps
	_, recs, err := c.query(q)
	return recs, err
}

// PointIDs answers a point query, returning ids only.
func (c *Client) PointIDs(p geom.Point, eps float64) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point, q.Eps = proto.KindPoint, proto.ModeIDs, p, eps
	ids, _, err := c.query(q)
	return ids, err
}

// Nearest answers a nearest-neighbor query, returning the nearest record
// (nil when the dataset is empty).
func (c *Client) Nearest(p geom.Point) (*proto.Record, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point = proto.KindNN, proto.ModeData, p
	_, recs, err := c.query(q)
	if err != nil || len(recs) == 0 {
		return nil, err
	}
	return &recs[0], nil
}

// KNearest answers a k-nearest-neighbor query, nearest first.
func (c *Client) KNearest(p geom.Point, k int) ([]proto.Record, error) {
	if k > math.MaxUint16 {
		return nil, fmt.Errorf("client: k=%d exceeds wire limit", k)
	}
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point, q.K = proto.KindNN, proto.ModeData, p, uint16(k)
	_, recs, err := c.query(q)
	return recs, err
}

// BatchResult is one query's answer within a batch: IDs for id/filter modes,
// Records for data mode, or Err when the server failed that query.
type BatchResult struct {
	IDs     []uint32
	Records []proto.Record
	Err     error
}

// QueryBatch answers up to proto.MaxBatchQueries queries in ONE wire
// exchange: one request frame out, one reply frame back, so N queries cost
// one frame-header pair, one syscall pair, and — in the paper's energy
// terms — one NIC wakeup instead of N. The ID and TimeoutMicros fields of
// the given queries are managed by the client; the deadline governs the
// whole batch. Transient failures retry the whole batch. Per-query failures
// (e.g. an over-limit k) come back as per-item Errs, not an exchange error.
func (c *Client) QueryBatch(qs []proto.QueryMsg) ([]BatchResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("client: empty batch")
	}
	if len(qs) > proto.MaxBatchQueries {
		return nil, fmt.Errorf("client: batch of %d exceeds wire limit %d", len(qs), proto.MaxBatchQueries)
	}
	req := proto.AcquireBatchQuery()
	req.ID = c.id()
	req.TimeoutMicros = c.timeoutMicros()
	req.Queries = append(req.Queries[:0], qs...)
	resp, err := c.do(req)
	proto.ReleaseMessage(req)
	c.wire.queries.Add(uint64(len(qs)))
	c.metrics.batches.Inc()
	c.metrics.batchQueries.Add(uint64(len(qs)))
	if err != nil {
		return nil, err
	}
	switch r := resp.(type) {
	case *proto.BatchReplyMsg:
		if len(r.Items) != len(qs) {
			return nil, fmt.Errorf("client: batch reply has %d items for %d queries", len(r.Items), len(qs))
		}
		out := make([]BatchResult, len(r.Items))
		for i := range r.Items {
			it := &r.Items[i]
			if it.Err != 0 {
				out[i].Err = &proto.ErrorMsg{ID: r.ID, Code: it.Err, Text: it.Text}
				continue
			}
			out[i].IDs = it.IDs
			out[i].Records = it.Recs
		}
		return out, nil
	case *proto.ErrorMsg:
		return nil, r
	}
	return nil, fmt.Errorf("client: unexpected %v reply to batch", resp.Type())
}

// Ping round-trips an echo frame with a payload of the given size and
// returns the elapsed time. Small payloads sample RTT; payloads of several
// MSS sample effective bandwidth.
func (c *Client) Ping(payloadBytes int) (time.Duration, error) {
	msg := &proto.PingMsg{ID: c.id(), Payload: make([]byte, payloadBytes)}
	start := time.Now()
	resp, err := c.do(msg)
	proto.ReleaseMessage(msg)
	if err != nil {
		return 0, err
	}
	if _, ok := resp.(*proto.PingMsg); !ok {
		return 0, fmt.Errorf("client: unexpected %v reply to ping", resp.Type())
	}
	elapsed := time.Since(start)
	// The echo payload is not handed to the caller, so the reply can go
	// straight back to the message pool.
	proto.ReleaseMessage(resp)
	return elapsed, nil
}

// StatsSnapshot pulls the server's metrics snapshot over the query
// connection — the in-protocol observability surface (no HTTP endpoint
// needed; mqtop and mqload's end-of-run report use it).
func (c *Client) StatsSnapshot() (*proto.StatsMsg, error) {
	resp, err := c.do(&proto.StatsReqMsg{ID: c.id()})
	if err != nil {
		return nil, err
	}
	switch m := resp.(type) {
	case *proto.StatsMsg:
		return m, nil
	case *proto.ErrorMsg:
		return nil, m
	}
	return nil, fmt.Errorf("client: unexpected %v reply to stats request", resp.Type())
}

// Probe primes the link estimate with one small and one large ping.
func (c *Client) Probe() error {
	if _, err := c.Ping(0); err != nil {
		return err
	}
	_, err := c.Ping(256 << 10)
	return err
}

// LinkEstimate is the client's live view of the wireless link — the measured
// counterpart of the paper's effective bandwidth B.
type LinkEstimate struct {
	RTT time.Duration
	// BandwidthBps is the effective application-level bandwidth in
	// bits/second; 0 until a large enough transfer has been observed.
	BandwidthBps float64
	// Samples is the number of round trips observed.
	Samples int
}

// Link returns the current link estimate.
func (c *Client) Link() LinkEstimate { return c.link.estimate() }

// SetLink overrides the measured link estimate — the hook the liveserver
// example and the planner tests use to simulate changing channel conditions
// without shaping real traffic.
func (c *Client) SetLink(rtt time.Duration, bandwidthBps float64) {
	c.link.override(rtt, bandwidthBps)
}

// linkTracker keeps EWMA estimates of RTT and bandwidth from passive
// round-trip observations.
type linkTracker struct {
	mu         sync.Mutex
	rttSec     float64
	bwBps      float64
	samples    int
	overridden bool
}

// EWMA weight of a new sample.
const linkAlpha = 0.25

// bwSampleMinBytes is the least transfer worth a bandwidth sample: smaller
// exchanges are RTT-dominated.
const bwSampleMinBytes = 32 << 10

func (l *linkTracker) observe(elapsed time.Duration, bytes int) {
	sec := elapsed.Seconds()
	if sec <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.overridden {
		return
	}
	l.samples++
	if bytes < bwSampleMinBytes {
		// Small exchange: an RTT sample.
		if l.rttSec == 0 {
			l.rttSec = sec
		} else {
			l.rttSec += linkAlpha * (sec - l.rttSec)
		}
		return
	}
	// Large exchange: a bandwidth sample net of the current RTT estimate.
	net := sec - l.rttSec
	if net <= 0 {
		net = sec
	}
	bw := float64(bytes*8) / net
	if l.bwBps == 0 {
		l.bwBps = bw
	} else {
		l.bwBps += linkAlpha * (bw - l.bwBps)
	}
}

func (l *linkTracker) estimate() LinkEstimate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkEstimate{
		RTT:          time.Duration(l.rttSec * float64(time.Second)),
		BandwidthBps: l.bwBps,
		Samples:      l.samples,
	}
}

func (l *linkTracker) override(rtt time.Duration, bwBps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.overridden = true
	l.rttSec = rtt.Seconds()
	l.bwBps = bwBps
}
