// Package client is the mobile side of the networked service: a client
// library for the internal/serve protocol with connection pooling,
// retry-with-backoff on transient errors, passive link measurement (RTT and
// effective bandwidth) feeding the partitioning planner — the live
// counterpart of the paper's effective-bandwidth parameter B — and
// disconnection tolerance: a circuit breaker (breaker.go) that fails fast
// on a dead link and degrades gracefully to local execution (fallback.go).
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
)

// Config parameterizes a Client.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Conns caps pooled connections (and therefore this client's
	// outstanding requests); defaults to 4.
	Conns int
	// DialTimeout defaults to 2s.
	DialTimeout time.Duration
	// RequestTimeout is the end-to-end time budget of one attempt,
	// defaults to 5s. It is also sent to the server as the per-request
	// deadline.
	RequestTimeout time.Duration
	// MaxRetries is how many times a transient failure (connection error,
	// server overload, server shutdown) is retried; defaults to 3.
	MaxRetries int
	// BackoffBase is the first retry delay, doubling per attempt;
	// defaults to 2ms.
	BackoffBase time.Duration
	// BackoffMax caps the retry delay; defaults to 250ms.
	BackoffMax time.Duration
	// Obs enables client-side observability: round-trip histograms, link
	// gauges, and the planner's per-scheme and predicted-vs-actual metrics
	// and spans all land in this hub. Nil disables instrumentation.
	Obs *obs.Hub
	// Breaker configures the circuit breaker (off by default): consecutive
	// transient failures trip it open, open requests fail fast with
	// ErrBreakerOpen, and probe pings re-close it when the link returns.
	Breaker BreakerConfig
	// Fallback, when set, answers point/range/NN queries locally whenever
	// the breaker is open or a request exhausts its retries — graceful
	// degradation to the paper's all-client scheme. Nil keeps failures
	// as errors.
	Fallback Fallback
	// SemanticCache additionally uses Fallback on the HAPPY path: a query
	// covered by the local state is answered without touching the radio as
	// long as the state's epoch matches the server's latest reply hint
	// (see semantic.go). Requires Fallback to implement EpochFallback
	// (*Shipment does).
	SemanticCache bool
	// SemanticMaxAge bounds how long the semantic cache may trust the last
	// epoch hint without hearing from the server; defaults to 1s. Older
	// hints force one wire exchange, whose reply renews freshness when the
	// epoch is unchanged.
	SemanticMaxAge time.Duration
	// Dial overrides the transport dialer. Tests and cmd/mqload use it to
	// slot an internal/faultlink injector under the client. Nil dials
	// plain TCP.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

func (c *Config) fill() error {
	if c.Addr == "" {
		return fmt.Errorf("client: Config.Addr is required")
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 2 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.SemanticMaxAge <= 0 {
		c.SemanticMaxAge = time.Second
	}
	return nil
}

// Client is a pooled connection to one server. It is safe for concurrent
// use; up to Conns requests proceed in parallel, further callers wait for a
// connection.
type Client struct {
	cfg Config
	// sem bounds checked-out connections.
	sem chan struct{}

	mu     sync.Mutex
	idle   []*wireConn
	closed bool

	nextID atomic.Uint32
	link   linkTracker

	// Retries counts transient-failure retries (visible to load tests).
	retries atomic.Uint64
	wire    wireCounters

	// brk gates requests when the link is failing; fallback answers them
	// locally while it is open. Degraded-mode accounting lives in the
	// atomic counters and CAS-accumulating gauges below.
	brk            *breaker
	fallback       Fallback
	fallbacks      atomic.Uint64
	fallbackErrs   atomic.Uint64
	fallbackJ      obs.Gauge // modeled Joules of local fallback execution
	remoteNICJ     obs.Gauge // modeled NIC Joules of remote exchanges
	energy         obs.EnergyModel
	backoffRng     func() float64 // uniform [0,1) for full-jitter backoff
	backoffRngLock sync.Mutex

	// Semantic-cache state (semantic.go): the epoch-aware fallback, the
	// freshest server epoch hint with its arrival time, and the hit
	// accounting.
	semFallback EpochFallback
	lastHint    atomic.Uint64
	lastHintAt  atomic.Int64 // unix nanos of the latest hint
	// semRetired latches once any reply's hint disagrees with the
	// fallback's build epoch — proof of a server-side write. Sticky:
	// epoch hints are fingerprints, not ordered, so a delayed reply that
	// still carries the old hint cannot prove the write un-happened and
	// must not resurrect the local answers. The fallback is fixed at
	// construction, so there is no reset path.
	semRetired atomic.Bool
	semHits    atomic.Uint64
	semLocalJ  obs.Gauge // modeled Joules of semantic local answers
	semSavedJ  obs.Gauge // modeled NIC Joules the avoided exchanges cost

	hub     *obs.Hub
	metrics clientMetrics
}

// wireConn is one pooled TCP connection. A connection carries one
// outstanding request at a time; pipelining across requests happens by
// holding several connections.
type wireConn struct {
	nc net.Conn
	br *bufio.Reader
}

// New builds a Client. No connection is dialed until the first request.
func New(cfg Config) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	em := obs.DefaultEnergyModel()
	if cfg.Obs != nil {
		em = cfg.Obs.Energy
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	c := &Client{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Conns),
		brk:      newBreaker(cfg.Breaker),
		fallback: cfg.Fallback,
		energy:   em,
		hub:      cfg.Obs,
		metrics:  newClientMetrics(cfg.Obs),
	}
	c.backoffRng = func() float64 {
		c.backoffRngLock.Lock()
		defer c.backoffRngLock.Unlock()
		return rng.Float64()
	}
	if cfg.SemanticCache {
		ef, ok := cfg.Fallback.(EpochFallback)
		if !ok {
			return nil, fmt.Errorf("client: SemanticCache requires a Fallback with an epoch hint (e.g. *Shipment)")
		}
		c.semFallback = ef
	}
	return c, nil
}

// Close closes all pooled connections. In-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	for _, wc := range idle {
		wc.nc.Close()
	}
	return nil
}

// Retries returns the cumulative number of transient-failure retries.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// BreakerState returns the circuit breaker's position (BreakerClosed when
// the breaker is disabled).
func (c *Client) BreakerState() BreakerState {
	state, _, _, _ := c.brk.snapshot()
	return state
}

// DegradedStats is the client's disconnection-tolerance accounting: the
// breaker's position and history plus the local-fallback counters and the
// fallback-vs-remote energy attribution.
type DegradedStats struct {
	Breaker        BreakerState
	Trips          uint64 // closed→open transitions
	Probes         uint64 // half-open probe pings sent
	ProbeFailures  uint64 // probes that re-opened the breaker
	Fallbacks      uint64 // queries answered by the local fallback
	FallbackErrors uint64 // local fallback executions that failed
	// FallbackJoules is the modeled client CPU energy spent answering
	// queries locally; RemoteNICJoules the modeled NIC energy of every
	// remote exchange. Together they price degraded operation the way the
	// paper prices partitioning: compute Joules against radio Joules.
	FallbackJoules  float64
	RemoteNICJoules float64
}

// Degraded returns the degraded-mode accounting snapshot.
func (c *Client) Degraded() DegradedStats {
	state, trips, probes, probeFails := c.brk.snapshot()
	return DegradedStats{
		Breaker:         state,
		Trips:           trips,
		Probes:          probes,
		ProbeFailures:   probeFails,
		Fallbacks:       c.fallbacks.Load(),
		FallbackErrors:  c.fallbackErrs.Load(),
		FallbackJoules:  c.fallbackJ.Value(),
		RemoteNICJoules: c.remoteNICJ.Value(),
	}
}

// wireCounters tracks the physical cost of the client's traffic.
type wireCounters struct {
	framesTx, framesRx, bytesTx, bytesRx, exchanges, queries atomic.Uint64
}

// WireStats is a snapshot of the client's cumulative wire-level counters:
// frames and bytes in each direction, round-trip exchanges (every request
// kind, pings included), and the logical queries those exchanges carried.
// Queries/Exchanges > 1 means batching is amortizing the per-exchange cost —
// the quantity the paper's energy model prices as a NIC wakeup.
type WireStats struct {
	FramesTx, FramesRx uint64
	BytesTx, BytesRx   uint64
	Exchanges          uint64
	Queries            uint64
}

// WireStats returns the client's cumulative wire counters.
func (c *Client) WireStats() WireStats {
	return WireStats{
		FramesTx:  c.wire.framesTx.Load(),
		FramesRx:  c.wire.framesRx.Load(),
		BytesTx:   c.wire.bytesTx.Load(),
		BytesRx:   c.wire.bytesRx.Load(),
		Exchanges: c.wire.exchanges.Load(),
		Queries:   c.wire.queries.Load(),
	}
}

// checkout acquires a pooled connection, dialing a fresh one if the pool has
// capacity but no idle connection.
func (c *Client) checkout() (*wireConn, error) {
	c.sem <- struct{}{}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.sem
		return nil, fmt.Errorf("client: closed")
	}
	var wc *wireConn
	if n := len(c.idle); n > 0 {
		wc = c.idle[n-1]
		c.idle = c.idle[:n-1]
	}
	c.mu.Unlock()
	if wc != nil {
		return wc, nil
	}
	dial := c.cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		<-c.sem
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &wireConn{nc: nc, br: bufio.NewReaderSize(nc, 64<<10)}, nil
}

// checkin returns a healthy connection to the pool.
func (c *Client) checkin(wc *wireConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		wc.nc.Close()
	} else {
		c.idle = append(c.idle, wc)
		c.mu.Unlock()
	}
	<-c.sem
}

// discard drops a broken connection.
func (c *Client) discard(wc *wireConn) {
	wc.nc.Close()
	<-c.sem
}

// transientCode reports whether a server error invites a retry.
func transientCode(code proto.ErrCode) bool {
	return code == proto.CodeOverload || code == proto.CodeShutdown || code == proto.CodeUnavailable
}

// do sends req and returns the matching response, retrying transient
// failures with full-jitter exponential backoff on a fresh connection. With
// the breaker enabled, attempts are gated: an open breaker fails fast with
// ErrBreakerOpen (no wire traffic), and the caller that wins the half-open
// slot pays one probe ping before its request proceeds.
func (c *Client) do(req proto.Message) (proto.Message, error) {
	return c.exchange(req, time.Time{})
}

// exchange is do with an optional absolute deadline capping the whole retry
// loop — attempts and backoff sleeps included. A zero deadline keeps do's
// classic budget (every attempt gets RequestTimeout). The router passes the
// query's deadline here so it caps the slowest backend leg end to end
// instead of being re-applied per attempt or per hop.
func (c *Client) exchange(req proto.Message, deadline time.Time) (proto.Message, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, deadlineError(lastErr)
		}
		ok, probe := c.brk.allow(time.Now())
		if !ok {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last transient failure: %v)", ErrBreakerOpen, lastErr)
			}
			return nil, ErrBreakerOpen
		}
		if probe {
			c.metrics.breakerProbes.Inc()
			if perr := c.probeLink(); perr != nil {
				c.brk.probeResult(false, time.Now())
				c.observeBreaker()
				return nil, fmt.Errorf("%w (probe failed: %v)", ErrBreakerOpen, perr)
			}
			c.brk.probeResult(true, time.Now())
			c.observeBreaker()
		}
		resp, err := c.roundTrip(req, deadline)
		if err == nil {
			if em, ok := resp.(*proto.ErrorMsg); ok && transientCode(em.Code) {
				lastErr = em
				c.recordFailure()
			} else {
				c.brk.onSuccess()
				return resp, nil
			}
		} else {
			lastErr = err
			c.recordFailure()
		}
		if attempt >= c.cfg.MaxRetries {
			return nil, fmt.Errorf("client: %d attempts failed: %w", attempt+1, lastErr)
		}
		delay := backoffDelay(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt, c.backoffRng())
		if !deadline.IsZero() && time.Until(deadline) <= delay {
			// The next attempt could not finish inside the deadline anyway;
			// fail now instead of sleeping through it.
			return nil, deadlineError(lastErr)
		}
		c.retries.Add(1)
		c.metrics.retries.Inc()
		time.Sleep(delay)
	}
}

// deadlineError is the exchange-deadline failure, carrying the last
// transient failure when one was seen.
func deadlineError(lastErr error) error {
	if lastErr != nil {
		return fmt.Errorf("client: deadline exceeded (last failure: %w)", lastErr)
	}
	return fmt.Errorf("client: deadline exceeded")
}

// recordFailure feeds one transient failure to the breaker and mirrors a
// trip into the metrics.
func (c *Client) recordFailure() {
	if c.brk.onFailure(time.Now()) {
		c.metrics.breakerTrips.Inc()
	}
	c.observeBreaker()
}

// observeBreaker mirrors the breaker position into its gauge.
func (c *Client) observeBreaker() {
	state, _, _, _ := c.brk.snapshot()
	c.metrics.breakerState.Set(float64(state))
}

// probeLink round-trips one empty ping in a single attempt — the half-open
// breaker's link test. It bypasses do so a probe can never recurse into
// another probe.
func (c *Client) probeLink() error {
	msg := &proto.PingMsg{ID: c.id()}
	resp, err := c.roundTrip(msg, time.Time{})
	if err != nil {
		return err
	}
	proto.ReleaseMessage(resp)
	return nil
}

// backoffDelay computes the attempt-th retry sleep: exponential growth from
// base capped at max, with full jitter (uniform in [0, capped)) so a fleet
// of clients released by one server overload does not retry in lockstep —
// synchronized retry herds waste exactly the NIC wakeups the paper's energy
// model charges for. The doubling is computed without a shift so attempt
// counts far past 63 can never overflow into a negative (hot-looping) sleep;
// u is the caller's uniform sample in [0, 1).
func backoffDelay(base, max time.Duration, attempt int, u float64) time.Duration {
	if base <= 0 || max <= 0 {
		return 0
	}
	capped := base
	for i := 0; i < attempt && capped < max; i++ {
		capped *= 2
		if capped <= 0 { // overflow guard: doubling wrapped negative
			capped = max
			break
		}
	}
	if capped > max {
		capped = max
	}
	return time.Duration(u * float64(capped))
}

// roundTrip performs one attempt on one pooled connection and feeds the link
// tracker. A non-zero deadline tightens the attempt's socket deadline below
// the RequestTimeout default.
func (c *Client) roundTrip(req proto.Message, deadline time.Time) (proto.Message, error) {
	wc, err := c.checkout()
	if err != nil {
		return nil, err
	}
	attemptDeadline := time.Now().Add(c.cfg.RequestTimeout)
	if !deadline.IsZero() && deadline.Before(attemptDeadline) {
		attemptDeadline = deadline
	}
	if err := wc.nc.SetDeadline(attemptDeadline); err != nil {
		// The socket is already torn down (mirrors the server-side
		// SetReadDeadline handling): a request on it could block past its
		// budget, so the connection is discarded, not pooled.
		c.discard(wc)
		return nil, fmt.Errorf("client: arming deadline: %w", err)
	}

	start := time.Now()
	sentBytes, err := proto.WriteMessage(wc.nc, req)
	if err != nil {
		c.discard(wc)
		return nil, fmt.Errorf("client: write: %w", err)
	}
	resp, respBytes, err := c.readResponse(wc, req.RequestID())
	if err != nil {
		c.discard(wc)
		return nil, err
	}
	elapsed := time.Since(start)
	c.link.observe(elapsed, sentBytes+respBytes)
	c.checkin(wc)
	c.wire.framesTx.Add(1)
	c.wire.framesRx.Add(1)
	c.wire.bytesTx.Add(uint64(sentBytes))
	c.wire.bytesRx.Add(uint64(respBytes))
	c.wire.exchanges.Add(1)
	bw := c.link.estimate().BandwidthBps
	if bw <= 0 {
		bw = 2e6 // the paper's base bandwidth when unmeasured
	}
	remoteJ := c.energy.NICExchangeJoules(sentBytes, respBytes, 1, bw)
	c.remoteNICJ.Add(remoteJ)
	c.metrics.remoteJoules.Add(remoteJ)
	if c.hub != nil {
		c.metrics.rtHist.Observe(elapsed.Seconds())
		c.metrics.txBytes.Add(uint64(sentBytes))
		c.metrics.rxBytes.Add(uint64(respBytes))
		est := c.link.estimate()
		c.metrics.rttG.Set(est.RTT.Seconds())
		c.metrics.bwG.Set(est.BandwidthBps)
	}
	return resp, nil
}

// readResponse reads the response for id. With one outstanding request per
// connection, the next frame must be ours; anything else is a protocol
// violation and poisons the connection.
func (c *Client) readResponse(wc *wireConn, id uint32) (proto.Message, int, error) {
	resp, n, err := proto.ReadMessage(wc.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, fmt.Errorf("client: connection closed by server: %w", err)
		}
		return nil, 0, fmt.Errorf("client: read: %w", err)
	}
	if resp.RequestID() != id {
		return nil, 0, fmt.Errorf("client: response id %d for request %d", resp.RequestID(), id)
	}
	return resp, n, nil
}

func (c *Client) id() uint32 { return c.nextID.Add(1) }

func (c *Client) timeoutMicros() uint32 {
	us := c.cfg.RequestTimeout.Microseconds()
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}

// query runs one query and decodes the reply for the requested mode. It
// owns q: the pooled request message is released after the exchange, so the
// steady-state request path reuses one QueryMsg and one encode buffer per
// connection instead of allocating them. Replies are NOT released — their
// slices are handed to the caller.
func (c *Client) query(q *proto.QueryMsg) ([]uint32, []proto.Record, error) {
	q.ID = c.id()
	q.TimeoutMicros = c.timeoutMicros()
	resp, err := c.do(q)
	proto.ReleaseMessage(q)
	c.wire.queries.Add(1)
	if err != nil {
		return nil, nil, err
	}
	switch r := resp.(type) {
	case *proto.IDListMsg:
		c.noteHint(r.Epoch)
		return r.IDs, nil, nil
	case *proto.DataListMsg:
		c.noteHint(r.Epoch)
		ids := make([]uint32, len(r.Records))
		for i, rec := range r.Records {
			ids[i] = rec.ID
		}
		return ids, r.Records, nil
	case *proto.ErrorMsg:
		return nil, nil, r
	}
	return nil, nil, fmt.Errorf("client: unexpected %v reply to query", resp.Type())
}

// queryWithFallback runs q remotely, degrading to local execution when the
// error is transient (breaker open, retries exhausted, overload/shutdown)
// and the configured Fallback covers the query. Like query, it owns q.
// With the semantic cache enabled and provably fresh for q, the exchange is
// skipped entirely and the answer comes from the local sub-index.
func (c *Client) queryWithFallback(q *proto.QueryMsg) ([]uint32, []proto.Record, error) {
	if ids, recs, ok := c.trySemantic(q); ok {
		return ids, recs, nil
	}
	var (
		cq       core.Query
		canLocal bool
	)
	if c.fallback != nil {
		cq, canLocal = coreQuery(q) // capture before query releases q
	}
	ids, recs, err := c.query(q)
	if err == nil || !canLocal || !fallbackEligible(err) || !c.fallback.Covers(cq) {
		return ids, recs, err
	}
	frecs, ferr := c.runFallback(cq)
	if ferr != nil {
		return nil, nil, fmt.Errorf("client: remote failed (%v); local fallback failed: %w", err, ferr)
	}
	fids := make([]uint32, len(frecs))
	for i := range frecs {
		fids[i] = frecs[i].ID
	}
	return fids, frecs, nil
}

// fallbackEligible reports whether a query failure invites local fallback:
// anything except a definitive non-transient server verdict (bad request,
// unsupported) — those would fail identically anywhere.
func fallbackEligible(err error) bool {
	var em *proto.ErrorMsg
	if errors.As(err, &em) {
		return transientCode(em.Code)
	}
	return true
}

// runLocal executes cq against a local index with a span under the given
// scheme and the modeled compute cost attributed — the shared engine of the
// degraded-mode fallback and the semantic cache's happy-path hits.
func (c *Client) runLocal(f Fallback, cq core.Query, scheme string) (recs []proto.Record, sec, joules float64, err error) {
	var sp *obs.Span
	if c.hub != nil {
		sp = c.hub.Trace.Start(queryKindName(cq.Kind))
		sp.SetScheme(scheme)
	}
	start := time.Now()
	recs, err = f.Answer(cq, 0)
	sec = time.Since(start).Seconds()
	sp.Lap(obs.StageFallback, sec)
	j, cy := c.energy.Compute(sec)
	sp.Attribute(obs.StageFallback, j, cy)
	if err != nil {
		sp.SetErr()
	}
	sp.Finish()
	return recs, sec, j, err
}

// runFallback executes cq against the local fallback with degraded-mode
// accounting: a span staged as StageFallback, modeled local-compute Joules,
// and the fallback counters.
func (c *Client) runFallback(cq core.Query) ([]proto.Record, error) {
	recs, sec, j, err := c.runLocal(c.fallback, cq, "fallback-local")
	if err != nil {
		c.fallbackErrs.Add(1)
		return nil, err
	}
	c.fallbacks.Add(1)
	c.fallbackJ.Add(j)
	c.metrics.fallbacks.Inc()
	c.metrics.fallbackHist.Observe(sec)
	c.metrics.fallbackJoules.Add(j)
	return recs, nil
}

// Range answers a window query, returning full records (fully-server, data
// absent at client).
func (c *Client) Range(w geom.Rect) ([]proto.Record, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Window = proto.KindRange, proto.ModeData, w
	_, recs, err := c.queryWithFallback(q)
	return recs, err
}

// RangeIDs answers a window query, returning ids only (fully-server, data
// present at client — §6.1.1).
func (c *Client) RangeIDs(w geom.Rect) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Window = proto.KindRange, proto.ModeIDs, w
	ids, _, err := c.queryWithFallback(q)
	return ids, err
}

// FilterRange returns the server's candidate ids for a window — the server
// half of filter-server/refine-client.
func (c *Client) FilterRange(w geom.Rect) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Window = proto.KindRange, proto.ModeFilter, w
	ids, _, err := c.query(q)
	return ids, err
}

// Point answers a point query with tolerance eps (0 = server default),
// returning full records.
func (c *Client) Point(p geom.Point, eps float64) ([]proto.Record, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point, q.Eps = proto.KindPoint, proto.ModeData, p, eps
	_, recs, err := c.queryWithFallback(q)
	return recs, err
}

// PointIDs answers a point query, returning ids only.
func (c *Client) PointIDs(p geom.Point, eps float64) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point, q.Eps = proto.KindPoint, proto.ModeIDs, p, eps
	ids, _, err := c.queryWithFallback(q)
	return ids, err
}

// Nearest answers a nearest-neighbor query, returning the nearest record
// (nil when the dataset is empty).
func (c *Client) Nearest(p geom.Point) (*proto.Record, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point = proto.KindNN, proto.ModeData, p
	_, recs, err := c.queryWithFallback(q)
	if err != nil || len(recs) == 0 {
		return nil, err
	}
	return &recs[0], nil
}

// KNearest answers a k-nearest-neighbor query, nearest first.
func (c *Client) KNearest(p geom.Point, k int) ([]proto.Record, error) {
	if k > math.MaxUint16 {
		return nil, fmt.Errorf("client: k=%d exceeds wire limit", k)
	}
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point, q.K = proto.KindNN, proto.ModeData, p, uint16(k)
	_, recs, err := c.queryWithFallback(q)
	return recs, err
}

// BatchResult is one query's answer within a batch: IDs for id/filter modes,
// Records for data mode, or Err when the server failed that query.
type BatchResult struct {
	IDs     []uint32
	Records []proto.Record
	Err     error
}

// QueryBatch answers up to proto.MaxBatchQueries queries in ONE wire
// exchange: one request frame out, one reply frame back, so N queries cost
// one frame-header pair, one syscall pair, and — in the paper's energy
// terms — one NIC wakeup instead of N. The ID and TimeoutMicros fields of
// the given queries are managed by the client; the deadline governs the
// whole batch. Transient failures retry the whole batch; if the exchange
// still fails and a Fallback is configured, each covered query is answered
// locally. Per-query failures (e.g. an over-limit k) come back as per-item
// Errs, not an exchange error.
//
// Ownership rule: the returned IDs and Records are copies owned by the
// caller. The pooled BatchReplyMsg is released before QueryBatch returns, so
// results stay valid across later exchanges (pooled reply slices would be
// overwritten by the next decode).
func (c *Client) QueryBatch(qs []proto.QueryMsg) ([]BatchResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("client: empty batch")
	}
	if len(qs) > proto.MaxBatchQueries {
		return nil, fmt.Errorf("client: batch of %d exceeds wire limit %d", len(qs), proto.MaxBatchQueries)
	}
	req := proto.AcquireBatchQuery()
	req.ID = c.id()
	req.TimeoutMicros = c.timeoutMicros()
	req.Queries = append(req.Queries[:0], qs...)
	resp, err := c.do(req)
	proto.ReleaseMessage(req)
	c.wire.queries.Add(uint64(len(qs)))
	c.metrics.batches.Inc()
	c.metrics.batchQueries.Add(uint64(len(qs)))
	if err != nil {
		if out, ok := c.batchFallback(qs, err); ok {
			return out, nil
		}
		return nil, err
	}
	switch r := resp.(type) {
	case *proto.BatchReplyMsg:
		c.noteHint(r.Epoch)
		if len(r.Items) != len(qs) {
			n := len(r.Items)
			proto.ReleaseMessage(r)
			return nil, fmt.Errorf("client: batch reply has %d items for %d queries", n, len(qs))
		}
		out := make([]BatchResult, len(r.Items))
		for i := range r.Items {
			it := &r.Items[i]
			if it.Err != 0 {
				out[i].Err = &proto.ErrorMsg{ID: r.ID, Code: it.Err, Text: it.Text}
				continue
			}
			// Copy out of the pooled reply: it.IDs and it.Recs alias
			// r's backing arrays, which the next decode will overwrite.
			if len(it.IDs) > 0 {
				out[i].IDs = append([]uint32(nil), it.IDs...)
			}
			if len(it.Recs) > 0 {
				out[i].Records = append([]proto.Record(nil), it.Recs...)
			}
		}
		proto.ReleaseMessage(r)
		return out, nil
	case *proto.ErrorMsg:
		return nil, r
	}
	return nil, fmt.Errorf("client: unexpected %v reply to batch", resp.Type())
}

// batchFallback answers a failed batch locally, query by query. ok is false
// when no fallback is configured or the exchange failure was not transient;
// otherwise every query gets a result (uncovered ones carry per-item Errs),
// matching the batch contract.
func (c *Client) batchFallback(qs []proto.QueryMsg, cause error) ([]BatchResult, bool) {
	if c.fallback == nil || !fallbackEligible(cause) {
		return nil, false
	}
	out := make([]BatchResult, len(qs))
	for i := range qs {
		cq, ok := coreQuery(&qs[i])
		if !ok || !c.fallback.Covers(cq) {
			out[i].Err = fmt.Errorf("client: not covered by local fallback: %w", cause)
			continue
		}
		recs, err := c.runFallback(cq)
		if err != nil {
			out[i].Err = err
			continue
		}
		if qs[i].Mode == proto.ModeData {
			out[i].Records = recs
		} else {
			ids := make([]uint32, len(recs))
			for j := range recs {
				ids[j] = recs[j].ID
			}
			out[i].IDs = ids
		}
	}
	return out, true
}

// Ping round-trips an echo frame with a payload of the given size and
// returns the elapsed time. Small payloads sample RTT; payloads of several
// MSS sample effective bandwidth.
func (c *Client) Ping(payloadBytes int) (time.Duration, error) {
	msg := &proto.PingMsg{ID: c.id(), Payload: make([]byte, payloadBytes)}
	start := time.Now()
	resp, err := c.do(msg)
	proto.ReleaseMessage(msg)
	if err != nil {
		return 0, err
	}
	if _, ok := resp.(*proto.PingMsg); !ok {
		return 0, fmt.Errorf("client: unexpected %v reply to ping", resp.Type())
	}
	elapsed := time.Since(start)
	// The echo payload is not handed to the caller, so the reply can go
	// straight back to the message pool.
	proto.ReleaseMessage(resp)
	return elapsed, nil
}

// StatsSnapshot pulls the server's metrics snapshot over the query
// connection — the in-protocol observability surface (no HTTP endpoint
// needed; mqtop and mqload's end-of-run report use it).
func (c *Client) StatsSnapshot() (*proto.StatsMsg, error) {
	resp, err := c.do(&proto.StatsReqMsg{ID: c.id()})
	if err != nil {
		return nil, err
	}
	switch m := resp.(type) {
	case *proto.StatsMsg:
		return m, nil
	case *proto.ErrorMsg:
		return nil, m
	}
	return nil, fmt.Errorf("client: unexpected %v reply to stats request", resp.Type())
}

// Probe primes the link estimate with one small and one large ping.
func (c *Client) Probe() error {
	if _, err := c.Ping(0); err != nil {
		return err
	}
	_, err := c.Ping(256 << 10)
	return err
}

// LinkEstimate is the client's live view of the wireless link — the measured
// counterpart of the paper's effective bandwidth B.
type LinkEstimate struct {
	RTT time.Duration
	// BandwidthBps is the effective application-level bandwidth in
	// bits/second; 0 until a large enough transfer has been observed.
	BandwidthBps float64
	// Samples is the number of round trips observed.
	Samples int
}

// Link returns the current link estimate.
func (c *Client) Link() LinkEstimate { return c.link.estimate() }

// SetLink overrides the measured link estimate — the hook the liveserver
// example and the planner tests use to simulate changing channel conditions
// without shaping real traffic.
func (c *Client) SetLink(rtt time.Duration, bandwidthBps float64) {
	c.link.override(rtt, bandwidthBps)
}

// linkTracker keeps EWMA estimates of RTT and bandwidth from passive
// round-trip observations.
type linkTracker struct {
	mu         sync.Mutex
	rttSec     float64
	bwBps      float64
	samples    int
	overridden bool
}

// EWMA weight of a new sample.
const linkAlpha = 0.25

// bwSampleMinBytes is the least transfer worth a bandwidth sample: smaller
// exchanges are RTT-dominated.
const bwSampleMinBytes = 32 << 10

func (l *linkTracker) observe(elapsed time.Duration, bytes int) {
	sec := elapsed.Seconds()
	if sec <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.overridden {
		return
	}
	l.samples++
	if bytes < bwSampleMinBytes {
		// Small exchange: an RTT sample.
		if l.rttSec == 0 {
			l.rttSec = sec
		} else {
			l.rttSec += linkAlpha * (sec - l.rttSec)
		}
		return
	}
	// Large exchange: a bandwidth sample net of the current RTT estimate.
	net := sec - l.rttSec
	if net <= 0 {
		net = sec
	}
	bw := float64(bytes*8) / net
	if l.bwBps == 0 {
		l.bwBps = bw
	} else {
		l.bwBps += linkAlpha * (bw - l.bwBps)
	}
}

func (l *linkTracker) estimate() LinkEstimate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkEstimate{
		RTT:          time.Duration(l.rttSec * float64(time.Second)),
		BandwidthBps: l.bwBps,
		Samples:      l.samples,
	}
}

func (l *linkTracker) override(rtt time.Duration, bwBps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.overridden = true
	l.rttSec = rtt.Seconds()
	l.bwBps = bwBps
}
