// semantic.go: the client half of the two-tier result cache. The degraded-
// mode machinery (fallback.go, shipment.go) already knows how to answer a
// covered query from a local sub-index; the semantic cache reuses it on the
// HAPPY path: when the client holds a shipment whose epoch matches the
// server's most recent epoch hint, a covered query is answered locally and
// the radio stays asleep — the paper's fully-client scheme applied
// opportunistically, per query, with epoch-based invalidation instead of
// blind TTLs.
//
// Freshness protocol: every server reply stamps the current index epoch
// hint (proto list messages carry it; 0 means the server has no validity
// view). The client remembers the latest hint and its arrival time. A local
// answer is allowed only while the shipment's epoch equals that hint AND
// the hint is younger than SemanticMaxAge. Any server-side write changes
// the hint, which permanently retires the shipment (a shipment cannot be
// patched); hint age forces periodic revalidation over the wire even on an
// idle link, bounding staleness when the client has not heard from the
// server at all.
package client

import (
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/proto"
)

// EpochFallback is a Fallback that knows which index epoch its local state
// was built from — the contract the semantic cache needs. *Shipment
// implements it; a PoolFallback does not (its pool is not derived from the
// server's index), which keeps the semantic cache opt-in for exactly the
// state that can prove freshness.
type EpochFallback interface {
	Fallback
	// EpochHint returns the server epoch hint the local state was built
	// at; 0 means unknown (never fresh).
	EpochHint() uint64
}

// wireRecordBytes sizes one proto.Record on the wire (id + 4 coordinates)
// for the saved-traffic estimate of a semantic hit.
const wireRecordBytes = 36

// noteHint records the freshest server epoch hint; 0 carries no
// information and is ignored. A hint that disagrees with the fallback's
// build epoch retires the semantic cache permanently instead of being
// stored: replies are not ordered (retries, pooled connections), so a
// delayed reply still carrying the shipment's epoch may arrive AFTER the
// hint that proved a write — storing it unconditionally would resurrect
// semanticFresh and serve pre-write answers as current.
func (c *Client) noteHint(epoch uint64) {
	if epoch == 0 || c.semFallback == nil {
		return
	}
	if epoch != c.semFallback.EpochHint() {
		c.semRetired.Store(true)
		return
	}
	c.lastHint.Store(epoch)
	c.lastHintAt.Store(time.Now().UnixNano())
}

// semanticFresh reports whether the local shipment may answer cq right now:
// not retired, covered, epoch equal to the server's latest hint, and the
// hint younger than SemanticMaxAge. The retirement check is separate from
// the hint comparison so it holds under racing replies: whatever a stale
// reply managed to store into lastHint, the latch set by the newer hint
// wins.
func (c *Client) semanticFresh(cq core.Query) bool {
	if c.semRetired.Load() {
		return false
	}
	e := c.semFallback.EpochHint()
	if e == 0 || e != c.lastHint.Load() {
		return false
	}
	at := c.lastHintAt.Load()
	if at == 0 || time.Since(time.Unix(0, at)) > c.cfg.SemanticMaxAge {
		return false
	}
	return c.semFallback.Covers(cq)
}

// trySemantic answers q locally when the semantic cache is fresh for it.
// ok=false sends the caller to the wire (which, via the reply's epoch hint,
// is also how freshness gets renewed). On ok=true the pooled q has been
// released and the results follow query()'s shape: ids always, records only
// for data mode.
func (c *Client) trySemantic(q *proto.QueryMsg) (ids []uint32, recs []proto.Record, ok bool) {
	if c.semFallback == nil || q.Mode == proto.ModeFilter {
		// Filter mode wants the server's candidate set, not an exact local
		// answer — semantically different, so it always goes to the wire.
		return nil, nil, false
	}
	cq, canLocal := coreQuery(q)
	if !canLocal || !c.semanticFresh(cq) {
		return nil, nil, false
	}
	out, sec, j, err := c.runLocal(c.semFallback, cq, "semcache-local")
	if err != nil {
		return nil, nil, false // let the wire answer (and revalidate)
	}
	mode := q.Mode
	proto.ReleaseMessage(q) // the wire path never runs; the request is done
	c.semHits.Add(1)
	c.semLocalJ.Add(j)
	c.metrics.semHits.Inc()
	c.metrics.semHist.Observe(sec)
	c.metrics.semLocalJoules.Add(j)
	saved := c.savedNICJoules(len(out), mode)
	c.semSavedJ.Add(saved)
	c.metrics.semSavedJoules.Add(saved)

	ids = make([]uint32, len(out))
	for i := range out {
		ids[i] = out[i].ID
	}
	if mode == proto.ModeData {
		return ids, out, true
	}
	return ids, nil, true
}

// savedNICJoules models the radio energy one semantic hit avoided: the
// request/reply exchange that did not happen, priced with the live
// bandwidth estimate like every real exchange in roundTrip.
func (c *Client) savedNICJoules(n int, mode proto.Mode) float64 {
	bw := c.link.estimate().BandwidthBps
	if bw <= 0 {
		bw = 2e6 // the paper's base bandwidth when unmeasured
	}
	resp := proto.IDListBytes(n)
	if mode == proto.ModeData {
		resp = proto.DataListBytes(n, wireRecordBytes)
	}
	return c.energy.NICExchangeJoules(proto.QueryRequestBytes, resp, 1, bw)
}

// SemanticStats is the semantic cache's accounting: local answers served,
// the modeled compute Joules they cost, and the modeled NIC Joules the
// avoided exchanges would have cost. SavedNICJoules − LocalJoules is the
// client's net energy win, the same compute-vs-radio trade the paper's
// partitioning model prices.
type SemanticStats struct {
	Hits           uint64
	LocalJoules    float64
	SavedNICJoules float64
}

// Semantic returns the semantic-cache accounting snapshot.
func (c *Client) Semantic() SemanticStats {
	return SemanticStats{
		Hits:           c.semHits.Load(),
		LocalJoules:    c.semLocalJ.Value(),
		SavedNICJoules: c.semSavedJ.Value(),
	}
}
