package client_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve"
	"mobispatial/internal/serve/client"
)

// obsWorld is plannerWorld with client-side observability enabled and spans
// sampled 1-in-1.
func obsWorld(t *testing.T) (*dataset.Dataset, *client.Client, *client.Planner, *obs.Hub) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "obs-test",
		NumSegments:    4000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 50000, Y: 50000}},
		Clusters:       4,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.25,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 160},
		GridBias:       0.6,
		Seed:           31,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pool, err := parallel.New(ds, tree, 0)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	srv, err := serve.New(serve.Config{Pool: pool, Master: tree})
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })

	hub := obs.NewHub()
	hub.Trace = obs.NewTracer(128, 1)
	c, err := client.New(client.Config{Addr: lis.Addr().String(), Conns: 4, Obs: hub})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { c.Close() })

	p := client.NewPlanner(c)
	if err := p.FetchShipment(ds.Extent, 4000*(ds.RecordBytes+rtree.EntryBytes)+1<<20, ds.RecordBytes); err != nil {
		t.Fatalf("shipment: %v", err)
	}
	return ds, c, p, hub
}

func snapCounter(snap obs.Snapshot, name string) (uint64, bool) {
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

func snapHist(snap obs.Snapshot, name string) (obs.HistValue, bool) {
	for _, h := range snap.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return obs.HistValue{}, false
}

// TestPlannerRecordsSchemesAndPredictionError drives both advisor-chosen
// schemes through Execute and checks the per-scheme metrics, the modeled
// energy accumulation, and the predicted-vs-actual partitioning-error
// histograms.
func TestPlannerRecordsSchemesAndPredictionError(t *testing.T) {
	ds, c, p, hub := obsWorld(t)
	center := ds.Extent.Center()

	// Fast link: point queries stay local, a huge range offloads (ids back).
	c.SetLink(500*time.Microsecond, 1e9)

	for i := 0; i < 4; i++ {
		res, err := p.Execute(core.Point(center))
		if err != nil {
			t.Fatalf("point execute: %v", err)
		}
		if res.Plan != client.PlanLocal {
			t.Fatalf("point plan = %v, want fully-client", res.Plan)
		}
	}
	bigW := geom.Rect{
		Min: geom.Point{X: center.X - 20000, Y: center.Y - 20000},
		Max: geom.Point{X: center.X + 20000, Y: center.Y + 20000},
	}
	res, err := p.Execute(core.Range(bigW))
	if err != nil {
		t.Fatalf("range execute: %v", err)
	}
	if res.Plan != client.PlanServerIDs {
		t.Fatalf("big range plan = %v, want server-ids", res.Plan)
	}

	snap := hub.Reg.Snapshot()
	for scheme, want := range map[string]uint64{"fully-client": 4, "server-ids": 1} {
		name := obs.Name("client_plans_total", "scheme", scheme)
		if got, ok := snapCounter(snap, name); !ok || got != want {
			t.Errorf("%s = %d (present=%v), want %d", name, got, ok, want)
		}
		hname := obs.Name("client_exec_seconds", "scheme", scheme)
		if h, ok := snapHist(snap, hname); !ok || h.Count != want {
			t.Errorf("%s count = %d (present=%v), want %d", hname, h.Count, ok, want)
		}
		rname := obs.Name("client_plan_cycle_ratio", "scheme", scheme)
		if h, ok := snapHist(snap, rname); !ok || h.Count != want || h.Mean <= 0 {
			t.Errorf("%s count=%d mean=%g (present=%v), want count %d, mean > 0",
				rname, h.Count, h.Mean, ok, want)
		}
	}
	var joules float64
	for _, g := range snap.Gauges {
		if strings.HasPrefix(g.Name, "client_energy_joules_total") {
			joules += g.Value
		}
	}
	if joules <= 0 {
		t.Errorf("accumulated modeled energy = %g, want > 0", joules)
	}
	// Transport metrics from the offloaded query and the shipment fetch.
	if h, ok := snapHist(snap, "client_roundtrip_seconds"); !ok || h.Count == 0 {
		t.Error("client_roundtrip_seconds missing or empty")
	}
}

// TestPlannerSpansCarryEnergy: an offloaded execution's span must decompose
// into plan, wire, and server-exec stages with nonzero Joules attribution.
func TestPlannerSpansCarryEnergy(t *testing.T) {
	ds, c, p, hub := obsWorld(t)
	center := ds.Extent.Center()
	c.SetLink(500*time.Microsecond, 1e9)

	bigW := geom.Rect{
		Min: geom.Point{X: center.X - 20000, Y: center.Y - 20000},
		Max: geom.Point{X: center.X + 20000, Y: center.Y + 20000},
	}
	if _, err := p.Execute(core.Range(bigW)); err != nil {
		t.Fatalf("execute: %v", err)
	}

	snap := hub.Trace.Snapshot()
	var offloaded *obs.SpanView
	for i := range snap.Sampled {
		if snap.Sampled[i].Scheme == "server-ids" {
			offloaded = &snap.Sampled[i]
		}
	}
	if offloaded == nil {
		t.Fatal("no server-ids span retained")
	}
	if offloaded.Joules <= 0 {
		t.Errorf("span joules = %g, want > 0", offloaded.Joules)
	}
	stages := map[string]obs.StageView{}
	for _, st := range offloaded.Stages {
		stages[st.Stage] = st
	}
	for _, want := range []string{"plan", "server-exec"} {
		st, ok := stages[want]
		if !ok || st.Seconds <= 0 || st.Joules <= 0 {
			t.Errorf("stage %q: present=%v seconds=%g joules=%g, want all > 0",
				want, ok, st.Seconds, st.Joules)
		}
	}
	// The wire stage exists whenever a bandwidth estimate is available.
	if st, ok := stages["wire"]; !ok || st.Joules <= 0 {
		t.Errorf("wire stage: present=%v joules=%g, want > 0", ok, st.Joules)
	}
}
