package client

import (
	"fmt"

	"mobispatial/internal/core"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
)

// Shipment is the client-resident outcome of a Fig. 2 shipment: the shipped
// records plus a locally rebuilt packed sub-index. Queries whose geometry
// falls inside Coverage can be answered entirely at the client — the
// fully-client scheme made real.
type Shipment struct {
	// Coverage is the server's guarantee rectangle; empty means no
	// guarantee (the answer alone overflowed the budget).
	Coverage geom.Rect
	// Epoch is the server's index epoch hint at shipment time; 0 when the
	// server gave none (distributed pools, or an index already written
	// to). The semantic cache compares it against the latest reply hint
	// to prove the shipment still reflects the live index.
	Epoch uint64
	// Tree is the packed R-tree rebuilt over the shipped records.
	Tree *rtree.Tree
	// segs maps record id → geometry for local refinement.
	segs map[uint32]geom.Segment
}

// FetchShipment requests a shipment covering window under budgetBytes of
// client memory (recordBytes sizes the server's capacity math; use the
// dataset's record size) and rebuilds the sub-index locally.
func (c *Client) FetchShipment(window geom.Rect, budgetBytes, recordBytes int) (*Shipment, error) {
	req := &proto.ShipmentReqMsg{
		ID:            c.id(),
		Window:        window,
		BudgetBytes:   uint32(budgetBytes),
		RecordBytes:   uint32(recordBytes),
		TimeoutMicros: c.timeoutMicros(),
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	sm, ok := resp.(*proto.ShipmentMsg)
	if !ok {
		if em, isErr := resp.(*proto.ErrorMsg); isErr {
			return nil, em
		}
		return nil, fmt.Errorf("client: unexpected %v reply to shipment request", resp.Type())
	}
	c.noteHint(sm.Epoch)
	return NewShipment(sm)
}

// NewShipment builds the client-resident shipment from its wire message:
// the client pays the sub-index rebuild instead of shipping raw node bytes
// (same structure — the packed build is deterministic).
func NewShipment(sm *proto.ShipmentMsg) (*Shipment, error) {
	if len(sm.Records) == 0 {
		return nil, fmt.Errorf("client: empty shipment")
	}
	items := make([]rtree.Item, len(sm.Records))
	segs := make(map[uint32]geom.Segment, len(sm.Records))
	for i, r := range sm.Records {
		items[i] = rtree.Item{MBR: r.Seg.MBR(), ID: r.ID}
		segs[r.ID] = r.Seg
	}
	tree, err := rtree.Build(items, rtree.Config{}, ops.Null{})
	if err != nil {
		return nil, fmt.Errorf("client: rebuilding shipped sub-index: %w", err)
	}
	return &Shipment{Coverage: sm.Coverage, Epoch: sm.Epoch, Tree: tree, segs: segs}, nil
}

// Len returns the number of shipped records.
func (s *Shipment) Len() int { return len(s.segs) }

// EpochHint implements EpochFallback for the semantic cache.
func (s *Shipment) EpochHint() uint64 { return s.Epoch }

// Covers reports whether the shipment's guarantee extends to q: range
// windows must be contained in Coverage; point and NN queries need their
// point inside it (for NN the guarantee is heuristic near the coverage
// boundary — the true nearest segment could lie just outside; callers
// wanting exactness shrink the coverage by their tolerance).
func (s *Shipment) Covers(q core.Query) bool {
	if s.Coverage.IsEmpty() {
		return false
	}
	if q.Kind == core.RangeQuery {
		return s.Coverage.ContainsRect(q.Window)
	}
	return s.Coverage.ContainsPoint(q.Point)
}

// Answer executes q fully at the client against the shipped sub-index and
// records — filtering and refinement, exactly the paper's fully-client
// scheme. The caller is responsible for checking Covers first.
func (s *Shipment) Answer(q core.Query, eps float64) ([]proto.Record, error) {
	if eps <= 0 {
		eps = core.PointEps
	}
	var ids []uint32
	switch q.Kind {
	case core.PointQuery:
		for _, id := range s.Tree.SearchPoint(q.Point, ops.Null{}) {
			if s.segs[id].ContainsPoint(q.Point, eps) {
				ids = append(ids, id)
			}
		}
	case core.RangeQuery:
		for _, id := range s.Tree.Search(q.Window, ops.Null{}) {
			if s.segs[id].IntersectsRect(q.Window) {
				ids = append(ids, id)
			}
		}
	case core.NNQuery:
		dist := func(id uint32) float64 { return s.segs[id].DistToPoint(q.Point) }
		if q.K > 1 {
			for _, nb := range s.Tree.KNearest(q.Point, q.K, dist, ops.Null{}) {
				ids = append(ids, nb.ID)
			}
		} else if id, _, ok := s.Tree.Nearest(q.Point, dist, ops.Null{}); ok {
			ids = append(ids, id)
		}
	default:
		return nil, fmt.Errorf("client: unknown query kind %v", q.Kind)
	}
	recs := make([]proto.Record, len(ids))
	for i, id := range ids {
		recs[i] = proto.Record{ID: id, Seg: s.segs[id]}
	}
	return recs, nil
}

// Record returns the shipped record for id, ok=false when id was not
// shipped (e.g. materializing a server id list that strays outside the
// shipment).
func (s *Shipment) Record(id uint32) (proto.Record, bool) {
	seg, ok := s.segs[id]
	return proto.Record{ID: id, Seg: seg}, ok
}
