package client_test

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve/client"
)

// scriptedServer accepts connections and answers each request with the
// handler's reply (nil = close the connection).
func scriptedServer(t *testing.T, handler func(n int, req proto.Message) proto.Message) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	var reqs atomic.Int64
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				for {
					req, _, err := proto.ReadMessage(nc)
					if err != nil {
						return
					}
					resp := handler(int(reqs.Add(1)), req)
					if resp == nil {
						return
					}
					if _, err := proto.WriteMessage(nc, resp); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return lis.Addr().String()
}

// TestClientRetriesOverload verifies retry-with-backoff: the server refuses
// the first two attempts with CodeOverload, the third succeeds.
func TestClientRetriesOverload(t *testing.T) {
	addr := scriptedServer(t, func(n int, req proto.Message) proto.Message {
		if n <= 2 {
			return &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeOverload, Text: "busy"}
		}
		return &proto.IDListMsg{ID: req.RequestID(), IDs: []uint32{42}}
	})
	c, err := client.New(client.Config{Addr: addr, Conns: 1, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids, err := c.PointIDs(geom.Point{X: 1, Y: 1}, 0)
	if err != nil {
		t.Fatalf("query failed despite retries: %v", err)
	}
	if len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("ids = %v", ids)
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

// TestClientRetriesDroppedConn verifies a connection killed mid-request is
// retried on a fresh connection.
func TestClientRetriesDroppedConn(t *testing.T) {
	addr := scriptedServer(t, func(n int, req proto.Message) proto.Message {
		if n == 1 {
			return nil // slam the connection shut
		}
		return &proto.IDListMsg{ID: req.RequestID(), IDs: []uint32{7}}
	})
	c, err := client.New(client.Config{Addr: addr, Conns: 1, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ids, err := c.PointIDs(geom.Point{X: 1, Y: 1}, 0)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	if len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("ids = %v", ids)
	}
	if c.Retries() == 0 {
		t.Fatal("no retry recorded")
	}
}

// TestClientGivesUpAfterMaxRetries verifies permanent overload surfaces as
// an error after MaxRetries+1 attempts.
func TestClientGivesUpAfterMaxRetries(t *testing.T) {
	var attempts atomic.Int64
	addr := scriptedServer(t, func(n int, req proto.Message) proto.Message {
		attempts.Add(1)
		return &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeOverload, Text: "busy"}
	})
	c, err := client.New(client.Config{Addr: addr, Conns: 1, MaxRetries: 2, BackoffBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.PointIDs(geom.Point{X: 1, Y: 1}, 0); err == nil {
		t.Fatal("permanently overloaded server reported success")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

// TestClientFailsFastOnBadRequest verifies non-transient server errors are
// not retried.
func TestClientFailsFastOnBadRequest(t *testing.T) {
	var attempts atomic.Int64
	addr := scriptedServer(t, func(n int, req proto.Message) proto.Message {
		attempts.Add(1)
		return &proto.ErrorMsg{ID: req.RequestID(), Code: proto.CodeBadRequest, Text: "nope"}
	})
	c, err := client.New(client.Config{Addr: addr, Conns: 1, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.PointIDs(geom.Point{X: 1, Y: 1}, 0)
	if err == nil {
		t.Fatal("bad request reported success")
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("bad request attempted %d times", got)
	}
	if c.Retries() != 0 {
		t.Fatal("non-transient error was retried")
	}
}

// TestLinkMeasurement verifies pings feed the RTT/bandwidth estimate and
// SetLink overrides it.
func TestLinkMeasurement(t *testing.T) {
	addr := scriptedServer(t, func(n int, req proto.Message) proto.Message {
		return req // echo pings
	})
	c, err := client.New(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Probe(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	link := c.Link()
	if link.Samples < 2 {
		t.Fatalf("samples = %d", link.Samples)
	}
	if link.RTT <= 0 {
		t.Fatalf("rtt = %v", link.RTT)
	}
	if link.BandwidthBps <= 0 {
		t.Fatalf("bandwidth = %v", link.BandwidthBps)
	}

	c.SetLink(7*time.Millisecond, 123456)
	link = c.Link()
	if link.RTT != 7*time.Millisecond || link.BandwidthBps != 123456 {
		t.Fatalf("override ignored: %+v", link)
	}
	// Further traffic must not disturb an overridden link (simulation mode).
	if _, err := c.Ping(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Link(); got.RTT != 7*time.Millisecond || got.BandwidthBps != 123456 {
		t.Fatalf("override drifted: %+v", got)
	}
}
