// obs.go: the client half of the observability wiring. The client measures
// what the paper's model predicts — round-trip latency, link estimates, and
// per-scheme execution outcomes — and the planner closes the loop by
// recording its §4.1 predictions against the measured result of every
// executed query (the predicted-vs-actual partitioning error).
package client

import (
	"mobispatial/internal/core"
	"mobispatial/internal/obs"
)

// clientMetrics holds the transport-level handles, resolved once at New.
// All handles are nil (no-op) when Config.Obs is nil.
type clientMetrics struct {
	rtHist  *obs.Histogram // client_roundtrip_seconds
	rttG    *obs.Gauge     // client_link_rtt_seconds
	bwG     *obs.Gauge     // client_link_bandwidth_bps
	retries *obs.Counter   // client_retries_total
	txBytes *obs.Counter   // client_tx_bytes_total
	rxBytes *obs.Counter   // client_rx_bytes_total
	// batches counts QueryBatch exchanges; batchQueries the queries carried.
	batches      *obs.Counter // client_batches_total
	batchQueries *obs.Counter // client_batch_queries_total
	// Degraded-mode handles: the breaker position (0=closed, 1=open,
	// 2=half-open), its trips and probes, local fallback executions, and the
	// fallback-vs-remote energy attribution.
	breakerState   *obs.Gauge     // client_breaker_state
	breakerTrips   *obs.Counter   // client_breaker_trips_total
	breakerProbes  *obs.Counter   // client_breaker_probes_total
	fallbacks      *obs.Counter   // client_fallback_total
	fallbackHist   *obs.Histogram // client_fallback_seconds
	fallbackJoules *obs.Gauge     // client_fallback_joules_total
	remoteJoules   *obs.Gauge     // client_remote_nic_joules_total
	// Semantic-cache handles: happy-path local answers and their energy
	// ledger (compute spent vs radio saved).
	semHits        *obs.Counter   // client_semcache_hits_total
	semHist        *obs.Histogram // client_semcache_seconds
	semLocalJoules *obs.Gauge     // client_semcache_local_joules_total
	semSavedJoules *obs.Gauge     // client_semcache_saved_nic_joules_total
}

func newClientMetrics(h *obs.Hub) clientMetrics {
	var m clientMetrics
	if h == nil {
		return m
	}
	m.rtHist = h.Reg.Histogram("client_roundtrip_seconds")
	m.rttG = h.Reg.Gauge("client_link_rtt_seconds")
	m.bwG = h.Reg.Gauge("client_link_bandwidth_bps")
	m.retries = h.Reg.Counter("client_retries_total")
	m.txBytes = h.Reg.Counter("client_tx_bytes_total")
	m.rxBytes = h.Reg.Counter("client_rx_bytes_total")
	m.batches = h.Reg.Counter("client_batches_total")
	m.batchQueries = h.Reg.Counter("client_batch_queries_total")
	m.breakerState = h.Reg.Gauge("client_breaker_state")
	m.breakerTrips = h.Reg.Counter("client_breaker_trips_total")
	m.breakerProbes = h.Reg.Counter("client_breaker_probes_total")
	m.fallbacks = h.Reg.Counter("client_fallback_total")
	m.fallbackHist = h.Reg.Histogram("client_fallback_seconds")
	m.fallbackJoules = h.Reg.Gauge("client_fallback_joules_total")
	m.remoteJoules = h.Reg.Gauge("client_remote_nic_joules_total")
	m.semHits = h.Reg.Counter("client_semcache_hits_total")
	m.semHist = h.Reg.Histogram("client_semcache_seconds")
	m.semLocalJoules = h.Reg.Gauge("client_semcache_local_joules_total")
	m.semSavedJoules = h.Reg.Gauge("client_semcache_saved_nic_joules_total")
	return m
}

// plannerMetrics holds the per-scheme handles, indexed by Plan.
type plannerMetrics struct {
	// plans counts executions per scheme; execHist is end-to-end planned
	// execution time; joules accumulates modeled client energy.
	plans    [3]*obs.Counter
	execHist [3]*obs.Histogram
	joules   [3]*obs.Gauge
	// cycleRatio and energyRatio are the predicted-vs-actual partitioning
	// error: the advisor's predicted seconds (Joules) over the measured
	// seconds (modeled Joules) of the execution it chose. 1.0 = the §4.1
	// model priced this query perfectly.
	cycleRatio  [3]*obs.Histogram
	energyRatio [3]*obs.Histogram
}

func newPlannerMetrics(h *obs.Hub) plannerMetrics {
	var m plannerMetrics
	if h == nil {
		return m
	}
	for pl := PlanLocal; pl <= PlanServerData; pl++ {
		scheme := pl.String()
		m.plans[pl] = h.Reg.Counter(obs.Name("client_plans_total", "scheme", scheme))
		m.execHist[pl] = h.Reg.Histogram(obs.Name("client_exec_seconds", "scheme", scheme))
		m.joules[pl] = h.Reg.Gauge(obs.Name("client_energy_joules_total", "scheme", scheme))
		m.cycleRatio[pl] = h.Reg.Histogram(obs.Name("client_plan_cycle_ratio", "scheme", scheme))
		m.energyRatio[pl] = h.Reg.Histogram(obs.Name("client_plan_energy_ratio", "scheme", scheme))
	}
	return m
}

// queryKindName labels a core query for spans.
func queryKindName(k core.QueryKind) string {
	switch k {
	case core.PointQuery:
		return "point"
	case core.RangeQuery:
		return "range"
	}
	return "nn"
}

// attributeWire decomposes one network call's measured wall time into the
// modeled radio transfer (StageWire) and the residual server wait
// (StageServerExec), pricing each with the hub's energy model. With no
// bandwidth estimate the whole wall time is attributed as wait.
func attributeWire(sp *obs.Span, em obs.EnergyModel, wallSec float64, txBytes, rxBytes int, bwBps float64) {
	if sp == nil || wallSec <= 0 {
		return
	}
	txSec := em.TxSeconds(txBytes, bwBps)
	rxSec := em.TxSeconds(rxBytes, bwBps)
	if wire := txSec + rxSec; wire > wallSec {
		// The modeled transfer can exceed the measured wall time when the
		// bandwidth estimate is stale; scale it into the budget.
		scale := wallSec / wire
		txSec *= scale
		rxSec *= scale
	}
	waitSec := wallSec - txSec - rxSec
	sp.Lap(obs.StageWire, txSec+rxSec)
	j, cy := em.Tx(txSec)
	sp.Attribute(obs.StageWire, j, cy)
	j, cy = em.Rx(rxSec)
	sp.Attribute(obs.StageWire, j, cy)
	sp.Lap(obs.StageServerExec, waitSec)
	j, cy = em.Wait(waitSec)
	sp.Attribute(obs.StageServerExec, j, cy)
}
