// cluster.go is the router-facing side of the client: deadline-capped,
// append-first query calls the coordinator (internal/router) drives its
// backend legs through. Unlike the mobile-facing calls (Range, KNearest,
// ...), these copy replies into caller-owned buffers and release the pooled
// reply message before returning, so a router serving thousands of fan-outs
// per second recycles every message shell. None of them consult the local
// Fallback — a router leg that fails must surface the failure so the router
// can fail over to a replica, not answer from a stale local index.
package client

import (
	"fmt"
	"math"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
)

// microsUntil converts an absolute deadline into the wire's timeout field:
// the remaining time in microseconds, clamped to [1, MaxUint32]. A zero
// deadline falls back to the client's RequestTimeout.
func (c *Client) microsUntil(deadline time.Time) uint32 {
	if deadline.IsZero() {
		return c.timeoutMicros()
	}
	us := time.Until(deadline).Microseconds()
	if us <= 0 {
		return 1
	}
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}

// queryAppendUntil runs one id-mode query leg: send, append the reply's ids
// to dst, release the pooled reply.
func (c *Client) queryAppendUntil(q *proto.QueryMsg, dst []uint32, deadline time.Time) ([]uint32, error) {
	q.ID = c.id()
	q.TimeoutMicros = c.microsUntil(deadline)
	resp, err := c.exchange(q, deadline)
	proto.ReleaseMessage(q)
	c.wire.queries.Add(1)
	if err != nil {
		return dst, err
	}
	switch r := resp.(type) {
	case *proto.IDListMsg:
		dst = append(dst, r.IDs...)
		proto.ReleaseMessage(r)
		return dst, nil
	case *proto.ErrorMsg:
		return dst, r
	}
	return dst, fmt.Errorf("client: unexpected %v reply to query leg", resp.Type())
}

// RangeAppendUntil answers a window query leg in the given mode (ModeIDs or
// ModeFilter), appending matching ids to dst, honoring deadline across the
// whole retry loop.
func (c *Client) RangeAppendUntil(dst []uint32, w geom.Rect, mode proto.Mode, deadline time.Time) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Window = proto.KindRange, mode, w
	return c.queryAppendUntil(q, dst, deadline)
}

// PointAppendUntil answers a point query leg (eps 0 = server default;
// ModeFilter requests the unrefined candidate set).
func (c *Client) PointAppendUntil(dst []uint32, pt geom.Point, eps float64, mode proto.Mode, deadline time.Time) ([]uint32, error) {
	q := proto.AcquireQuery()
	q.Kind, q.Mode, q.Point, q.Eps = proto.KindPoint, mode, pt, eps
	return c.queryAppendUntil(q, dst, deadline)
}

// KNearestNeighborsAppendUntil answers one cross-server NN leg (MsgNNQuery):
// k neighbors with exact distances, ascending, appended to dst. bound is the
// router's running k-th-neighbor distance — a pruning hint the backend may
// use to skip shards (+Inf or 0 disables it). The reply is copied into dst
// and released, per the router's zero-alloc merge discipline.
func (c *Client) KNearestNeighborsAppendUntil(dst []proto.Neighbor, pt geom.Point, k int, bound float64, deadline time.Time) ([]proto.Neighbor, error) {
	if k > math.MaxUint16 {
		return dst, fmt.Errorf("client: k=%d exceeds wire limit", k)
	}
	if math.IsInf(bound, 1) {
		bound = 0 // the wire encodes "unbounded" as 0
	}
	q := proto.AcquireNNQuery()
	q.ID = c.id()
	q.Point, q.K, q.Bound = pt, uint16(k), bound
	q.TimeoutMicros = c.microsUntil(deadline)
	resp, err := c.exchange(q, deadline)
	proto.ReleaseMessage(q)
	c.wire.queries.Add(1)
	if err != nil {
		return dst, err
	}
	switch r := resp.(type) {
	case *proto.NeighborsMsg:
		dst = append(dst, r.Neighbors...)
		proto.ReleaseMessage(r)
		return dst, nil
	case *proto.ErrorMsg:
		return dst, r
	}
	return dst, fmt.Errorf("client: unexpected %v reply to nn leg", resp.Type())
}

// QueryBatchVisit sends one batch leg — a sub-slice of a client batch the
// router grouped onto this backend — and visits each item's answer in order:
// visit(i, ids, code, text), where i indexes qs. The ids slice aliases the
// pooled reply and is valid only during the visit call; the caller appends
// what it keeps. ID and TimeoutMicros fields of qs are managed here. Like
// every cluster-side call, an exchange failure surfaces as an error (no
// local fallback) so the router can fail over to replica holders.
func (c *Client) QueryBatchVisit(qs []proto.QueryMsg, deadline time.Time, visit func(i int, ids []uint32, code proto.ErrCode, text string)) error {
	if len(qs) == 0 {
		return nil
	}
	if len(qs) > proto.MaxBatchQueries {
		return fmt.Errorf("client: batch leg of %d exceeds wire limit %d", len(qs), proto.MaxBatchQueries)
	}
	req := proto.AcquireBatchQuery()
	req.ID = c.id()
	req.TimeoutMicros = c.microsUntil(deadline)
	req.Queries = append(req.Queries[:0], qs...)
	resp, err := c.exchange(req, deadline)
	proto.ReleaseMessage(req)
	c.wire.queries.Add(uint64(len(qs)))
	c.metrics.batches.Inc()
	c.metrics.batchQueries.Add(uint64(len(qs)))
	if err != nil {
		return err
	}
	switch r := resp.(type) {
	case *proto.BatchReplyMsg:
		if len(r.Items) != len(qs) {
			n := len(r.Items)
			proto.ReleaseMessage(r)
			return fmt.Errorf("client: batch leg reply has %d items for %d queries", n, len(qs))
		}
		for i := range r.Items {
			it := &r.Items[i]
			visit(i, it.IDs, it.Err, it.Text)
		}
		proto.ReleaseMessage(r)
		return nil
	case *proto.ErrorMsg:
		return r
	}
	return fmt.Errorf("client: unexpected %v reply to batch leg", resp.Type())
}

// Summary fetches the backend's partition summary — the router's
// registration handshake. The reply is caller-owned (summaries are not
// pooled; registration is rare).
func (c *Client) Summary() (*proto.SummaryMsg, error) {
	resp, err := c.do(&proto.SummaryReqMsg{ID: c.id()})
	if err != nil {
		return nil, err
	}
	switch m := resp.(type) {
	case *proto.SummaryMsg:
		return m, nil
	case *proto.ErrorMsg:
		return nil, m
	}
	return nil, fmt.Errorf("client: unexpected %v reply to summary request", resp.Type())
}
