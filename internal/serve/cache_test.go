package serve

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/mutable"
	"mobispatial/internal/proto"
	"mobispatial/internal/qcache"
)

// cachedWorld builds one mutable pool served by two in-process servers: one
// with the result cache, one without. The uncached server is the oracle —
// it always re-executes, so any divergence is a cache bug.
func cachedWorld(t testing.TB) (*dataset.Dataset, *mutable.Pool, *Server, *Server) {
	t.Helper()
	ds, _ := testDataset(t)
	pool, err := mutable.NewFromDataset(ds, 4, mutable.Config{CompactInterval: -1})
	if err != nil {
		t.Fatalf("mutable pool: %v", err)
	}
	t.Cleanup(pool.Close)
	cached, err := New(Config{Pool: pool, Cache: qcache.New(qcache.Config{})})
	if err != nil {
		t.Fatalf("cached server: %v", err)
	}
	uncached, err := New(Config{Pool: pool})
	if err != nil {
		t.Fatalf("uncached server: %v", err)
	}
	return ds, pool, cached, uncached
}

// runOne executes one query in-process and copies the answer out of the
// scratch-backed reply: sorted-insensitive callers sort afterwards.
func runOne(t testing.TB, srv *Server, sc *reqScratch, q proto.QueryMsg) ([]uint32, map[uint32]geom.Segment) {
	t.Helper()
	switch r := srv.executeQuery(&q, sc, time.Time{}).(type) {
	case *proto.IDListMsg:
		return append([]uint32(nil), r.IDs...), nil
	case *proto.DataListMsg:
		ids := make([]uint32, 0, len(r.Records))
		segs := make(map[uint32]geom.Segment, len(r.Records))
		for _, rec := range r.Records {
			ids = append(ids, rec.ID)
			segs[rec.ID] = rec.Seg
		}
		return ids, segs
	case *proto.ErrorMsg:
		t.Fatalf("query %+v failed: code=%d %s", q, r.Code, r.Text)
	}
	return nil, nil
}

func sortIDs(ids []uint32) { sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) }

func randomCacheQuery(rng *rand.Rand, ext geom.Rect) proto.QueryMsg {
	cx := ext.Min.X + rng.Float64()*ext.Width()
	cy := ext.Min.Y + rng.Float64()*ext.Height()
	pt := geom.Point{X: cx, Y: cy}
	half := 100 + rng.Float64()*900
	w := geom.Rect{
		Min: geom.Point{X: cx - half, Y: cy - half},
		Max: geom.Point{X: cx + half, Y: cy + half},
	}
	switch rng.Intn(6) {
	case 0:
		return proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w}
	case 1:
		return proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeData, Window: w}
	case 2:
		return proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeFilter, Window: w}
	case 3:
		return proto.QueryMsg{Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: pt}
	case 4:
		return proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeIDs, Point: pt}
	default:
		return proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeIDs, Point: pt, K: 8}
	}
}

// TestCachedEquivalenceUnderWrites is the correctness contract of the whole
// feature: under a moving-vehicles write stream with periodic compaction
// epoch swaps, a cached server and an uncached server over the same pool
// must give identical answers — including the second issue of each query,
// which is served from the cache when no write invalidated it.
func TestCachedEquivalenceUnderWrites(t *testing.T) {
	ds, pool, cached, uncached := cachedWorld(t)
	ext := ds.Extent
	rng := rand.New(rand.NewSource(23))
	csc, usc := cached.getScratch(), uncached.getScratch()

	randSeg := func(c geom.Point, spread float64) geom.Segment {
		a := geom.Point{X: c.X + (rng.Float64()*2-1)*spread, Y: c.Y + (rng.Float64()*2-1)*spread}
		return geom.Segment{A: a, B: geom.Point{X: a.X + 40 + rng.Float64()*80, Y: a.Y + rng.Float64()*60}}
	}

	type vehicle struct {
		id  uint32
		seg geom.Segment
	}
	var fleet []vehicle
	nextID := uint32(ds.Len())
	center := ext.Center()
	hot := geom.Rect{
		Min: geom.Point{X: center.X - 700, Y: center.Y - 700},
		Max: geom.Point{X: center.X + 700, Y: center.Y + 700},
	}

	check := func(q proto.QueryMsg) {
		t.Helper()
		// Twice: first issue fills (or invalidates) the cache, second hits it.
		for rep := 0; rep < 2; rep++ {
			gotIDs, gotSegs := runOne(t, cached, csc, q)
			wantIDs, wantSegs := runOne(t, uncached, usc, q)
			sortIDs(gotIDs)
			sortIDs(wantIDs)
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("rep %d %+v: cached %d ids, uncached %d", rep, q, len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("rep %d %+v: cached ids %v, uncached %v", rep, q, gotIDs, wantIDs)
				}
			}
			for id, sg := range wantSegs {
				if gotSegs[id] != sg {
					t.Fatalf("rep %d %+v: stale geometry for id %d: cached %v, live %v", rep, q, id, gotSegs[id], sg)
				}
			}
		}
	}

	for round := 0; round < 60; round++ {
		for w := 0; w < 4; w++ {
			switch op := rng.Intn(10); {
			case op < 4 || len(fleet) == 0:
				sg := randSeg(geom.Point{
					X: ext.Min.X + rng.Float64()*ext.Width(),
					Y: ext.Min.Y + rng.Float64()*ext.Height()}, 400)
				if round%2 == 0 { // bias half the inserts into the hotspot
					sg = randSeg(center, 600)
				}
				if _, _, _, err := pool.ApplyInsert(nextID, sg); err != nil {
					t.Fatalf("insert %d: %v", nextID, err)
				}
				fleet = append(fleet, vehicle{nextID, sg})
				nextID++
			case op < 8:
				i := rng.Intn(len(fleet))
				sg := randSeg(fleet[i].seg.A, 300)
				if _, existed, _, err := pool.ApplyMove(fleet[i].id, sg); err != nil || !existed {
					t.Fatalf("move %d: existed=%v err=%v", fleet[i].id, existed, err)
				}
				fleet[i].seg = sg
			default:
				i := rng.Intn(len(fleet))
				if _, existed, _, err := pool.ApplyDelete(fleet[i].id); err != nil || !existed {
					t.Fatalf("delete %d: existed=%v err=%v", fleet[i].id, existed, err)
				}
				fleet[i] = fleet[len(fleet)-1]
				fleet = fleet[:len(fleet)-1]
			}
		}
		if round%7 == 3 {
			pool.ForceCompact() // epoch swap: version-keyed views must not serve pre-swap entries
		}
		// The recurring hotspot query sees every write generation; the random
		// ones cover the key space.
		check(proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeData, Window: hot})
		for qi := 0; qi < 5; qi++ {
			check(randomCacheQuery(rng, ext))
		}
	}

	st := cached.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Invalidations == 0 {
		t.Fatalf("workload did not exercise hit+miss+invalidation paths: %+v", st)
	}
}

// TestCachedQueryZeroAlloc pins the warm cache-hit path — view build, probe,
// copy-out, refinement, reply build — at zero heap allocations, same
// contract as the uncached hot path.
func TestCachedQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ds, _, srv, _ := cachedWorld(t)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 400, Y: center.Y - 400},
		Max: geom.Point{X: center.X + 400, Y: center.Y + 400},
	}
	queries := []*proto.QueryMsg{
		{ID: 1, Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w},
		{ID: 2, Kind: proto.KindRange, Mode: proto.ModeData, Window: w},
		{ID: 3, Kind: proto.KindRange, Mode: proto.ModeFilter, Window: w},
		{ID: 4, Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: center},
		{ID: 5, Kind: proto.KindNN, Mode: proto.ModeIDs, Point: center},
		{ID: 6, Kind: proto.KindNN, Mode: proto.ModeIDs, Point: center, K: 8},
	}
	sc := srv.getScratch()
	for i := 0; i < 2; i++ { // fill every entry, then confirm the hit path
		for _, q := range queries {
			if _, bad := srv.executeQuery(q, sc, time.Time{}).(*proto.ErrorMsg); bad {
				t.Fatal("warmup query failed")
			}
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			if _, bad := srv.executeQuery(q, sc, time.Time{}).(*proto.ErrorMsg); bad {
				t.Fatal("query failed")
			}
		}
	}); n != 0 {
		t.Fatalf("warm cache-hit executeQuery: %.2f allocs/op over %d queries, want 0", n, len(queries))
	}
	if st := srv.CacheStats(); st.Hits == 0 {
		t.Fatalf("alloc loop never hit the cache: %+v", st)
	}
}

// TestCacheChurnSoak runs concurrent readers against a cached server while
// movers rewrite geometry and a compactor swaps epochs — the -race CI soak.
// After quiescing, a full sweep against the uncached oracle verifies no
// stale entry survived the churn.
func TestCacheChurnSoak(t *testing.T) {
	ds, pool, cached, uncached := cachedWorld(t)
	ext := ds.Extent
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := uint32(rng.Intn(ds.Len()))
				a := geom.Point{
					X: ext.Min.X + rng.Float64()*ext.Width(),
					Y: ext.Min.Y + rng.Float64()*ext.Height(),
				}
				sg := geom.Segment{A: a, B: geom.Point{X: a.X + 50, Y: a.Y + 30}}
				if _, _, _, err := pool.ApplyMove(id, sg); err != nil {
					t.Errorf("move %d: %v", id, err)
					return
				}
			}
		}(int64(100 + m))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pool.ForceCompact()
			time.Sleep(time.Millisecond)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			sc := cached.getScratch()
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := randomCacheQuery(rng, ext)
				if em, bad := cached.executeQuery(&q, sc, time.Time{}).(*proto.ErrorMsg); bad {
					t.Errorf("reader: %+v -> code=%d %s", q, em.Code, em.Text)
					return
				}
			}
		}(int64(200 + r))
	}

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	rng := rand.New(rand.NewSource(300))
	csc, usc := cached.getScratch(), uncached.getScratch()
	for i := 0; i < 60; i++ {
		q := randomCacheQuery(rng, ext)
		gotIDs, _ := runOne(t, cached, csc, q)
		wantIDs, _ := runOne(t, uncached, usc, q)
		sortIDs(gotIDs)
		sortIDs(wantIDs)
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("post-churn %+v: cached %d ids, uncached %d", q, len(gotIDs), len(wantIDs))
		}
		for j := range gotIDs {
			if gotIDs[j] != wantIDs[j] {
				t.Fatalf("post-churn %+v: cached ids diverge from oracle", q)
			}
		}
	}
}

// zipfHotspots samples H hotspot centers from the data itself: popular
// places are where the road network is dense.
func zipfHotspots(rng *rand.Rand, ds *dataset.Dataset, hotspots int) []geom.Point {
	centers := make([]geom.Point, hotspots)
	for i := range centers {
		sg := ds.Seg(uint32(rng.Intn(ds.Len())))
		centers[i] = geom.Point{X: (sg.A.X + sg.B.X) / 2, Y: (sg.A.Y + sg.B.Y) / 2}
	}
	return centers
}

// zipfWindows synthesizes the Zipf-hotspot window workload: each window
// picks a Zipf-ranked hotspot, with small jitter so near-identical windows
// snap to the same cell-quantized key.
func zipfWindows(seed int64, ds *dataset.Dataset, n, hotspots int, s, half float64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	centers := zipfHotspots(rng, ds, hotspots)
	z := rand.NewZipf(rng, s, 1, uint64(hotspots-1))
	out := make([]geom.Rect, n)
	for i := range out {
		c := centers[z.Uint64()]
		cx := c.X + (rng.Float64()*2-1)*60
		cy := c.Y + (rng.Float64()*2-1)*60
		out[i] = geom.Rect{
			Min: geom.Point{X: cx - half, Y: cy - half},
			Max: geom.Point{X: cx + half, Y: cy + half},
		}
	}
	return out
}

// zipfQueries is the full mixed read workload of a mobile hotspot: half the
// clients browse a map window, a quarter resolve the segments at their
// position, a quarter ask for the 8 nearest segments from one of a few
// shared anchor points (clients at the same junction ask from the same
// snapped position, so NN keys repeat the way real hotspot traffic does).
func zipfQueries(seed int64, ds *dataset.Dataset, n, hotspots int, s, half float64) []proto.QueryMsg {
	rng := rand.New(rand.NewSource(seed))
	centers := zipfHotspots(rng, ds, hotspots)
	anchors := make([][4]geom.Point, hotspots)
	for i := range anchors {
		for j := range anchors[i] {
			anchors[i][j] = geom.Point{
				X: centers[i].X + (rng.Float64()*2-1)*60,
				Y: centers[i].Y + (rng.Float64()*2-1)*60,
			}
		}
	}
	z := rand.NewZipf(rng, s, 1, uint64(hotspots-1))
	out := make([]proto.QueryMsg, n)
	for i := range out {
		h := int(z.Uint64())
		c := centers[h]
		cx := c.X + (rng.Float64()*2-1)*60
		cy := c.Y + (rng.Float64()*2-1)*60
		switch rng.Intn(4) {
		case 0, 1:
			out[i] = proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeData, Window: geom.Rect{
				Min: geom.Point{X: cx - half, Y: cy - half},
				Max: geom.Point{X: cx + half, Y: cy + half},
			}}
		case 2:
			out[i] = proto.QueryMsg{Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: geom.Point{X: cx, Y: cy}}
		default:
			out[i] = proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeIDs, Point: anchors[h][rng.Intn(4)], K: 8}
		}
	}
	return out
}

// benchDataset is a city-scale world — dense enough that an uncached range
// query does real index work and resolves tens of records through the
// pool's owner table.
func benchDataset(b testing.TB) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "qcache-bench",
		NumSegments:    60000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 50000, Y: 50000}},
		Clusters:       6,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.25,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 160},
		GridBias:       0.6,
		Seed:           11,
	})
	if err != nil {
		b.Fatalf("generate: %v", err)
	}
	return ds
}

// BenchmarkZipfCached is the acceptance benchmark: data-mode range queries
// over a Zipf hotspot distribution against a mutable pool, cache off vs on.
// The uncached path pays the index walk plus a per-record geometry resolve
// through the pool's owner table; a hit pays a striped-LRU copy-out and an
// in-place refinement. results/BENCH_qcache.json records the ratio.
func BenchmarkZipfCached(b *testing.B) {
	run := func(b *testing.B, withCache bool) {
		ds := benchDataset(b)
		pool, err := mutable.NewFromDataset(ds, 8, mutable.Config{CompactInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer pool.Close()
		cfg := Config{Pool: pool}
		if withCache {
			cfg.Cache = qcache.New(qcache.Config{CellSize: 256})
		}
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		queries := zipfQueries(7, ds, 4096, 64, 1.2, 600)
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			sc := srv.getScratch()
			for pb.Next() {
				q := queries[next.Add(1)%uint64(len(queries))]
				if _, bad := srv.executeQuery(&q, sc, time.Time{}).(*proto.ErrorMsg); bad {
					b.Error("query failed")
					return
				}
			}
		})
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "queries/s")
		}
		if withCache {
			st := srv.CacheStats()
			b.ReportMetric(st.HitRate(), "hit-rate")
			b.ReportMetric(srv.CacheSavedJoules(), "saved-J")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
