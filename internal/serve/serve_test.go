package serve

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mobispatial/internal/core"
	"mobispatial/internal/dataset"
	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
	"mobispatial/internal/serve/client"
	"mobispatial/internal/shard"
)

// testDataset builds the shared 8000-segment world and its master tree.
func testDataset(t testing.TB) (*dataset.Dataset, *rtree.Tree) {
	t.Helper()
	ds, err := dataset.Generate(dataset.GenConfig{
		Name:           "serve-test",
		NumSegments:    8000,
		RecordBytes:    76,
		Extent:         geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 50000, Y: 50000}},
		Clusters:       6,
		ClusterStdFrac: 0.08,
		UniformFrac:    0.25,
		StreetSegs:     [2]int{2, 8},
		SegLen:         [2]float64{40, 160},
		GridBias:       0.6,
		Seed:           11,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return ds, tree
}

// startServer wires a configured server to an ephemeral listener and waits
// for Serve to register it.
func startServer(t testing.TB, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	// Wait for Serve to register the listener: a test finishing instantly
	// would otherwise Close before Serve starts and get a spurious
	// "shut down" error.
	for i := 0; i < 2000; i++ {
		srv.mu.Lock()
		started := srv.lis != nil
		srv.mu.Unlock()
		if started {
			break
		}
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v", err)
		}
	})
	return srv, lis.Addr().String()
}

// testWorld builds a dataset, monolithic pool, and running server on an
// ephemeral port.
func testWorld(t testing.TB, mutate func(*Config)) (*dataset.Dataset, *parallel.Pool, *Server, string) {
	t.Helper()
	ds, tree := testDataset(t)
	pool, err := parallel.New(ds, tree, 0)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	cfg := Config{Pool: pool, Master: tree}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, addr := startServer(t, cfg)
	return ds, pool, srv, addr
}

// testWorldSharded is testWorld with a shard.Pool executor: the same dataset
// and master tree, served through the scatter-gather path.
func testWorldSharded(t testing.TB, shards int, mutate func(*Config)) (*dataset.Dataset, *shard.Pool, *Server, string) {
	t.Helper()
	ds, tree := testDataset(t)
	pool, err := shard.New(ds, shard.Config{Shards: shards, Workers: 4})
	if err != nil {
		t.Fatalf("shard pool: %v", err)
	}
	t.Cleanup(pool.Close)
	cfg := Config{Pool: pool, Master: tree}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, addr := startServer(t, cfg)
	return ds, pool, srv, addr
}

func newClient(t testing.TB, addr string, conns int) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{Addr: addr, Conns: conns})
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerAnswersMatchPool verifies every query kind and mode over the
// wire against direct pool execution.
func TestServerAnswersMatchPool(t *testing.T) {
	ds, pool, _, addr := testWorld(t, nil)
	c := newClient(t, addr, 2)
	ext := ds.Extent
	rng := rand.New(rand.NewSource(5))

	for i := 0; i < 40; i++ {
		cx := ext.Min.X + rng.Float64()*ext.Width()
		cy := ext.Min.Y + rng.Float64()*ext.Height()
		pt := geom.Point{X: cx, Y: cy}
		half := 100 + rng.Float64()*1500
		w := geom.Rect{
			Min: geom.Point{X: cx - half, Y: cy - half},
			Max: geom.Point{X: cx + half, Y: cy + half},
		}

		gotIDs, err := c.RangeIDs(w)
		if err != nil {
			t.Fatalf("range ids: %v", err)
		}
		if want := pool.Range(w); !sameIDs(gotIDs, want) {
			t.Fatalf("range ids mismatch: got %d want %d", len(gotIDs), len(want))
		}

		recs, err := c.Range(w)
		if err != nil {
			t.Fatalf("range data: %v", err)
		}
		for _, r := range recs {
			if r.Seg != ds.Seg(r.ID) {
				t.Fatalf("record %d geometry corrupted over the wire", r.ID)
			}
		}

		cands, err := c.FilterRange(w)
		if err != nil {
			t.Fatalf("filter: %v", err)
		}
		if want := pool.FilterRange(w); !sameIDs(cands, want) {
			t.Fatalf("filter candidates mismatch")
		}

		ptIDs, err := c.PointIDs(pt, 0)
		if err != nil {
			t.Fatalf("point: %v", err)
		}
		if want := pool.Point(pt, DefaultPointEps); !sameIDs(ptIDs, want) {
			t.Fatalf("point ids mismatch")
		}

		nn, err := c.Nearest(pt)
		if err != nil {
			t.Fatalf("nn: %v", err)
		}
		if want := pool.Nearest(pt); !want.OK || nn == nil || nn.ID != want.ID {
			t.Fatalf("nn mismatch: got %v want %v", nn, want)
		}

		knn, err := c.KNearest(pt, 5)
		if err != nil {
			t.Fatalf("knn: %v", err)
		}
		want, _ := pool.KNearest(pt, 5)
		if len(knn) != len(want) {
			t.Fatalf("knn length mismatch: %d vs %d", len(knn), len(want))
		}
		for j := range knn {
			if knn[j].ID != want[j].ID {
				t.Fatalf("knn order mismatch at %d", j)
			}
		}
	}
}

// TestShipmentOverWire requests a Fig. 2 shipment and answers covered
// queries locally, matching server answers.
func TestShipmentOverWire(t *testing.T) {
	ds, pool, srv, addr := testWorld(t, nil)
	c := newClient(t, addr, 1)
	ext := ds.Extent
	center := ext.Center()
	window := geom.Rect{
		Min: geom.Point{X: center.X - 1000, Y: center.Y - 1000},
		Max: geom.Point{X: center.X + 1000, Y: center.Y + 1000},
	}

	ship, err := c.FetchShipment(window, 1<<20, ds.RecordBytes)
	if err != nil {
		t.Fatalf("shipment: %v", err)
	}
	if ship.Len() == 0 {
		t.Fatal("empty shipment")
	}
	if ship.Coverage.IsEmpty() || !ship.Coverage.ContainsRect(window) {
		t.Fatalf("coverage %v does not include window %v", ship.Coverage, window)
	}
	if got := srv.Stats().Shipments; got != 1 {
		t.Fatalf("shipment counter = %d", got)
	}

	// A window inside the coverage must be answerable locally with the
	// same ids the server returns.
	inner := geom.Rect{
		Min: geom.Point{X: center.X - 800, Y: center.Y - 800},
		Max: geom.Point{X: center.X + 800, Y: center.Y + 800},
	}
	local, err := ship.Answer(core.Range(inner), 0)
	if err != nil {
		t.Fatalf("local answer: %v", err)
	}
	want := pool.Range(inner)
	gotIDs := make([]uint32, len(local))
	for i, r := range local {
		gotIDs[i] = r.ID
	}
	if !sameIDsUnordered(gotIDs, want) {
		t.Fatalf("local answer %d ids, server %d ids", len(gotIDs), len(want))
	}
}

// TestConcurrentLoad is the acceptance load test: ≥32 connections complete
// ≥10k mixed queries against a live server with zero errors (run under
// -race via the package test command).
func TestConcurrentLoad(t *testing.T) {
	ds, _, srv, addr := testWorld(t, nil)
	const (
		conns      = 32
		perWorker  = 320 // 32 × 320 = 10240 ≥ 10k
		goroutines = conns
	)
	c := newClient(t, addr, conns)
	ext := ds.Extent

	var completed, failed atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < perWorker; i++ {
				cx := ext.Min.X + rng.Float64()*ext.Width()
				cy := ext.Min.Y + rng.Float64()*ext.Height()
				pt := geom.Point{X: cx, Y: cy}
				var err error
				switch i % 4 {
				case 0:
					_, err = c.PointIDs(pt, 0)
				case 1:
					half := 50 + rng.Float64()*800
					_, err = c.RangeIDs(geom.Rect{
						Min: geom.Point{X: cx - half, Y: cy - half},
						Max: geom.Point{X: cx + half, Y: cy + half},
					})
				case 2:
					_, err = c.Nearest(pt)
				case 3:
					_, err = c.KNearest(pt, 1+rng.Intn(6))
				}
				if err != nil {
					failed.Add(1)
					t.Errorf("worker %d query %d: %v", g, i, err)
					return
				}
				completed.Add(1)
			}
		}(g)
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d queries failed", failed.Load())
	}
	if got := completed.Load(); got < 10000 {
		t.Fatalf("only %d queries completed", got)
	}
	st := srv.Stats()
	if st.Served < 10000 || st.Errors != 0 {
		t.Fatalf("server stats: %+v", st)
	}
	if c.Retries() != 0 {
		t.Fatalf("client retried %d times under nominal load", c.Retries())
	}
}

// TestPipelining writes a burst of requests on one raw connection before
// reading anything, then matches all responses by request id.
func TestPipelining(t *testing.T) {
	ds, pool, _, addr := testWorld(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	ext := ds.Extent
	center := ext.Center()
	const burst = 20
	want := make(map[uint32][]uint32, burst)
	for i := 0; i < burst; i++ {
		half := 100 + float64(i)*150
		w := geom.Rect{
			Min: geom.Point{X: center.X - half, Y: center.Y - half},
			Max: geom.Point{X: center.X + half, Y: center.Y + half},
		}
		id := uint32(1000 + i)
		want[id] = pool.Range(w)
		if _, err := proto.WriteMessage(nc, &proto.QueryMsg{
			ID: id, Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w,
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	for i := 0; i < burst; i++ {
		msg, _, err := proto.ReadMessage(nc)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		lst, ok := msg.(*proto.IDListMsg)
		if !ok {
			t.Fatalf("response %d: unexpected %v", i, msg.Type())
		}
		w, ok := want[lst.ID]
		if !ok {
			t.Fatalf("response for unknown/duplicate id %d", lst.ID)
		}
		delete(want, lst.ID)
		if !sameIDs(lst.IDs, w) {
			t.Fatalf("pipelined answer %d mismatched", lst.ID)
		}
	}
	if len(want) != 0 {
		t.Fatalf("%d responses missing", len(want))
	}
}

// TestAdmissionControl saturates a MaxInFlight=2 server with slow requests
// and expects CodeOverload refusals, while admitted requests still succeed.
func TestAdmissionControl(t *testing.T) {
	_, _, srv, addr := testWorld(t, func(cfg *Config) {
		cfg.MaxInFlight = 2
		cfg.AdmitTimeout = 20 * time.Millisecond
		cfg.testDelay = 300 * time.Millisecond
	})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	const burst = 6
	for i := 0; i < burst; i++ {
		if _, err := proto.WriteMessage(nc, &proto.QueryMsg{
			ID: uint32(i), Kind: proto.KindPoint, Mode: proto.ModeIDs,
			Point: geom.Point{X: 1, Y: 1},
		}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	nc.SetReadDeadline(time.Now().Add(15 * time.Second))
	overloads, served := 0, 0
	for i := 0; i < burst; i++ {
		msg, _, err := proto.ReadMessage(nc)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		switch m := msg.(type) {
		case *proto.IDListMsg:
			served++
		case *proto.ErrorMsg:
			if m.Code != proto.CodeOverload {
				t.Fatalf("unexpected error %v", m)
			}
			overloads++
		default:
			t.Fatalf("unexpected %v", msg.Type())
		}
	}
	if overloads == 0 {
		t.Fatal("no overload refusals from a saturated server")
	}
	if served == 0 {
		t.Fatal("saturated server served nothing")
	}
	if got := srv.Stats().Overloads; got != uint64(overloads) {
		t.Fatalf("overload counter %d, saw %d", got, overloads)
	}
}

// TestDeadline forces execution past the request deadline and expects
// CodeDeadline.
func TestDeadline(t *testing.T) {
	_, _, srv, addr := testWorld(t, func(cfg *Config) {
		cfg.testDelay = 100 * time.Millisecond
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	if _, err := proto.WriteMessage(nc, &proto.QueryMsg{
		ID: 9, Kind: proto.KindPoint, Mode: proto.ModeIDs,
		Point:         geom.Point{X: 1, Y: 1},
		TimeoutMicros: 10_000, // 10ms deadline vs 100ms execution
	}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, _, err := proto.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	em, ok := msg.(*proto.ErrorMsg)
	if !ok || em.Code != proto.CodeDeadline {
		t.Fatalf("got %v, want deadline error", msg.Type())
	}
	if srv.Stats().Deadlines != 1 {
		t.Fatalf("deadline counter = %d", srv.Stats().Deadlines)
	}
}

// TestGracefulShutdown verifies Shutdown drains in-flight requests (their
// responses arrive) and then refuses new connections.
func TestGracefulShutdown(t *testing.T) {
	_, _, srv, addr := testWorld(t, func(cfg *Config) {
		cfg.testDelay = 150 * time.Millisecond
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Launch a slow request, then shut down while it is in flight.
	if _, err := proto.WriteMessage(nc, &proto.QueryMsg{
		ID: 77, Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: geom.Point{X: 1, Y: 1},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the server admit it

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()

	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, _, err := proto.ReadMessage(nc)
	if err != nil {
		t.Fatalf("in-flight response lost during shutdown: %v", err)
	}
	if _, ok := msg.(*proto.IDListMsg); !ok {
		t.Fatalf("in-flight request answered with %v", msg.Type())
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// New connections must be refused (or immediately closed).
	if nc2, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		nc2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, _, err := proto.ReadMessage(nc2); err == nil {
			t.Fatal("shut-down server answered a new connection")
		}
		nc2.Close()
	}
}

// TestMalformedFrameDropsConn sends garbage and expects the connection to be
// closed without taking the server down.
func TestMalformedFrameDropsConn(t *testing.T) {
	_, _, _, addr := testWorld(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // oversized frame header
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("expected the server to drop the connection")
	}
	nc.Close()

	// The server must still answer fresh connections.
	c := newClient(t, addr, 1)
	if _, err := c.PointIDs(geom.Point{X: 1, Y: 1}, 0); err != nil {
		t.Fatalf("server unhealthy after malformed frame: %v", err)
	}
}

func sameIDsUnordered(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[uint32]int, len(a))
	for _, x := range a {
		seen[x]++
	}
	for _, x := range b {
		seen[x]--
		if seen[x] < 0 {
			return false
		}
	}
	return true
}

func sameIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
