package serve

import (
	"net"
	"strings"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
	"mobispatial/internal/proto"
)

// TestDrainClosesIdleConnsFast: graceful shutdown must not wait out the
// reader poll interval on connections that are open but idle — the Shutdown
// poke has to win against the reader's deadline re-arm.
func TestDrainClosesIdleConnsFast(t *testing.T) {
	_, _, srv, addr := testWorld(t, nil)

	// Open idle connections and prove the server has registered them by
	// round-tripping a ping on each.
	var conns []net.Conn
	for i := 0; i < 4; i++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := proto.WriteMessage(nc, &proto.PingMsg{ID: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, _, err := proto.ReadMessage(nc); err != nil {
			t.Fatalf("ping reply: %v", err)
		}
		conns = append(conns, nc)
	}

	start := time.Now()
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("drain with idle conns took %v, want < 1s", elapsed)
	}
	// The server should have closed every idle connection.
	for _, nc := range conns {
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, _, err := proto.ReadMessage(nc); err == nil {
			t.Fatal("idle connection still open after drain")
		}
	}
}

func findCounter(t *testing.T, m *proto.StatsMsg, name string) uint64 {
	t.Helper()
	for _, c := range m.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q missing from snapshot", name)
	return 0
}

// TestStatsSnapshotOverWire pulls the in-protocol metrics snapshot after
// real traffic, with observability enabled and disabled.
func TestStatsSnapshotOverWire(t *testing.T) {
	hub := obs.NewHub()
	ds, _, _, addr := testWorld(t, func(cfg *Config) { cfg.Obs = hub })
	c := newClient(t, addr, 2)

	center := ds.Extent.Center()
	for i := 0; i < 8; i++ {
		if _, err := c.RangeIDs(geom.Rect{
			Min: geom.Point{X: center.X - 500, Y: center.Y - 500},
			Max: geom.Point{X: center.X + 500, Y: center.Y + 500},
		}); err != nil {
			t.Fatalf("range: %v", err)
		}
	}

	snap, err := c.StatsSnapshot()
	if err != nil {
		t.Fatalf("stats snapshot: %v", err)
	}
	if snap.UptimeMicros == 0 {
		t.Error("snapshot uptime is zero")
	}
	if got := findCounter(t, snap, "serve_served_total"); got < 8 {
		t.Errorf("serve_served_total = %d, want >= 8", got)
	}
	if findCounter(t, snap, "serve_rx_bytes_total") == 0 {
		t.Error("serve_rx_bytes_total is zero after traffic")
	}
	var execCount uint64
	for _, h := range snap.Hists {
		if strings.HasPrefix(h.Name, "serve_exec_seconds") {
			execCount += h.Count
		}
	}
	if execCount < 8 {
		t.Errorf("serve_exec_seconds total count = %d, want >= 8", execCount)
	}
}

// TestStatsSnapshotWithoutObs: the snapshot must stay useful when the server
// runs without an obs hub — core counters synthesized from the atomics.
func TestStatsSnapshotWithoutObs(t *testing.T) {
	ds, _, _, addr := testWorld(t, nil)
	c := newClient(t, addr, 1)
	if _, err := c.PointIDs(ds.Extent.Center(), 0); err != nil {
		t.Fatalf("point: %v", err)
	}
	snap, err := c.StatsSnapshot()
	if err != nil {
		t.Fatalf("stats snapshot: %v", err)
	}
	if got := findCounter(t, snap, "serve_served_total"); got < 1 {
		t.Errorf("serve_served_total = %d, want >= 1", got)
	}
	if len(snap.Hists) != 0 {
		t.Errorf("expected no histograms without obs, got %d", len(snap.Hists))
	}
}

// TestServerSpansSampled: with sampling at 1-in-1, server-side spans land in
// the tracer ring carrying the index-walk stage.
func TestServerSpansSampled(t *testing.T) {
	hub := obs.NewHub()
	hub.Trace = obs.NewTracer(64, 1)
	ds, _, _, addr := testWorld(t, func(cfg *Config) { cfg.Obs = hub })
	c := newClient(t, addr, 2)

	center := ds.Extent.Center()
	for i := 0; i < 5; i++ {
		if _, err := c.PointIDs(center, 0); err != nil {
			t.Fatalf("point: %v", err)
		}
	}

	snap := hub.Trace.Snapshot()
	if snap.Started < 5 || len(snap.Sampled) < 5 {
		t.Fatalf("started=%d sampled=%d, want >= 5 each", snap.Started, len(snap.Sampled))
	}
	sawWalk := false
	for _, sv := range snap.Sampled {
		if sv.Kind != "point" {
			t.Errorf("span kind = %q, want point", sv.Kind)
		}
		for _, st := range sv.Stages {
			if st.Stage == "index-walk" && st.Seconds > 0 {
				sawWalk = true
			}
		}
	}
	if !sawWalk {
		t.Error("no span carries a timed index-walk stage")
	}
}
