package serve

import (
	"errors"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/mutable"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/serve/client"
)

// TestUpdateRoundTrip drives the full write path over the wire: insert,
// data-mode read of the inserted object (SegResolver geometry for an id the
// base dataset has never heard of), move, delete, idempotent re-delete —
// against a server whose pool is an updatable shard pool.
func TestUpdateRoundTrip(t *testing.T) {
	ds, _ := testDataset(t)
	pool, err := mutable.NewFromDataset(ds, 4, mutable.Config{CompactInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	srv, addr := startServer(t, Config{Pool: pool})
	c, err := client.New(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id := uint32(ds.Len() + 7)
	seg := geom.Segment{A: geom.Point{X: 100, Y: 100}, B: geom.Point{X: 160, Y: 130}}
	ack, err := c.Insert(id, seg)
	if err != nil || ack.Existed || !ack.Owned {
		t.Fatalf("insert: ack=%+v err=%v", ack, err)
	}

	recs, err := c.Range(seg.MBR())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range recs {
		if r.ID == id {
			found = true
			if r.Seg != seg {
				t.Fatalf("data-mode record for inserted id: %v, want %v", r.Seg, seg)
			}
		}
	}
	if !found {
		t.Fatalf("inserted id %d missing from range over %v", id, seg.MBR())
	}

	seg2 := geom.Segment{A: geom.Point{X: 40000, Y: 40000}, B: geom.Point{X: 40080, Y: 40040}}
	ack, err = c.Move(id, seg2)
	if err != nil || !ack.Existed || !ack.Owned {
		t.Fatalf("move: ack=%+v err=%v", ack, err)
	}
	ids, err := c.RangeIDs(seg.MBR())
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range ids {
		if got == id {
			t.Fatalf("id %d still at old position after move", id)
		}
	}
	recs, err = c.Range(seg2.MBR())
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, r := range recs {
		if r.ID == id && r.Seg == seg2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("moved id %d not found at new position with fresh geometry", id)
	}

	if ack, err = c.Delete(id); err != nil || !ack.Existed {
		t.Fatalf("delete: ack=%+v err=%v", ack, err)
	}
	if ack, err = c.Delete(id); err != nil || ack.Existed {
		t.Fatalf("re-delete not idempotent: ack=%+v err=%v", ack, err)
	}

	if st := srv.Stats(); st.Updates != 4 {
		t.Fatalf("Stats.Updates=%d, want 4", st.Updates)
	}
}

// TestUpdateUnsupported: a server over a read-only pool answers update
// messages with CodeUnsupported instead of crashing or hanging.
func TestUpdateUnsupported(t *testing.T) {
	ds, tree := testDataset(t)
	pool, err := parallel.New(ds, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, Config{Pool: pool})
	c, err := client.New(client.Config{Addr: addr, Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Insert(uint32(ds.Len()), geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 2, Y: 2}})
	var em *proto.ErrorMsg
	if !errors.As(err, &em) || em.Code != proto.CodeUnsupported {
		t.Fatalf("insert on read-only pool: err=%v, want CodeUnsupported", err)
	}
}
