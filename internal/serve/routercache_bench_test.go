package serve

// routercache_bench_test.go pins the router-tier result cache: the same
// qcache that short-circuits a local index walk in mqserve sits in front of
// the mqrouter fan-out here, so a hotspot hit skips the entire multi-leg
// network exchange — the largest per-query cost in the serving tier.
// results/BENCH_routercache.json records the off/on ratio and hit rate.

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"mobispatial/internal/dataset"
	"mobispatial/internal/mutable"
	"mobispatial/internal/proto"
	"mobispatial/internal/qcache"
	"mobispatial/internal/router"
	"mobispatial/internal/shard"
)

// startRouterBench builds the full distributed tier in-process: nBackends
// mutable loopback backends over a Hilbert partition of ds at R=replicas,
// and a coordinating Router registered against them (live refresh on, at
// its default period, as mqrouter runs it).
func startRouterBench(b *testing.B, ds *dataset.Dataset, nBackends, replicas int) *router.Router {
	b.Helper()
	ranges, bounds := shard.PartitionHilbert(ds.Items(), nBackends, 0)
	cuts := make([]uint64, len(ranges))
	for i, rg := range ranges {
		cuts[i] = rg.Lo
	}
	var addrs []string
	for be := 0; be < nBackends; be++ {
		idxs, err := shard.ReplicaRanges(be, nBackends, replicas)
		if err != nil {
			b.Fatal(err)
		}
		var held []shard.Range
		var infos []proto.RangeInfo
		for _, ri := range idxs {
			rg := ranges[ri]
			held = append(held, rg)
			infos = append(infos, proto.RangeInfo{
				Index: uint32(rg.Index), Items: uint32(len(rg.Items)),
				Lo: rg.Lo, Hi: rg.Hi, MBR: rg.MBR,
			})
		}
		pool, err := mutable.New(mutable.Config{
			Dataset: ds, Ranges: held, Cuts: cuts, GlobalIndex: idxs,
			Bounds: bounds, CompactInterval: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { pool.Close() })
		srv, err := New(Config{Pool: pool, Ranges: infos, NumRanges: nBackends})
		if err != nil {
			b.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(lis)
		b.Cleanup(func() { srv.Close() })
		addrs = append(addrs, lis.Addr().String())
	}
	r, err := router.New(router.Config{
		Backends: addrs, Dataset: ds, RegisterTimeout: 15 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r
}

// BenchmarkRouterCachedZipf: the Zipf hotspot mix (50% range-ids, 25%
// point-ids, 25% 8-NN) through the router-tier server, cache off vs on.
// The uncached path pays the whole coordinator fan-out — cover selection,
// framed loopback round trips to the owning backends, merge; a hit pays one
// striped-LRU probe validated against the router's live per-range version
// vector. Run with -benchtime=2000x: the miss path is a network exchange,
// so time-based benchtime burns minutes on the "off" arm.
func BenchmarkRouterCachedZipf(b *testing.B) {
	run := func(b *testing.B, withCache bool) {
		ds := benchDataset(b)
		r := startRouterBench(b, ds, 3, 2)
		cfg := Config{Pool: r}
		if withCache {
			cfg.Cache = qcache.New(qcache.Config{CellSize: 256})
		}
		srv, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		queries := zipfQueries(7, ds, 4096, 64, 1.2, 600)
		// The router-tier server has no master tree: ids-mode only.
		for i := range queries {
			queries[i].Mode = proto.ModeIDs
		}
		var next atomic.Uint64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			sc := srv.getScratch()
			for pb.Next() {
				q := queries[next.Add(1)%uint64(len(queries))]
				if _, bad := srv.executeQuery(&q, sc, time.Time{}).(*proto.ErrorMsg); bad {
					b.Error("query failed")
					return
				}
			}
		})
		b.StopTimer()
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(b.N)/sec, "queries/s")
		}
		if withCache {
			st := srv.CacheStats()
			b.ReportMetric(st.HitRate(), "hit-rate")
			b.ReportMetric(srv.CacheSavedJoules(), "saved-J")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}
