package serve

import (
	"sort"
	"sync"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/ops"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/rtree"
)

// TestShardedServeMatchesMonolithic runs the same client workload against a
// sharded server and a monolithic server and requires identical answers end
// to end: same id sets for range/point, same neighbor distances for NN/k-NN.
func TestShardedServeMatchesMonolithic(t *testing.T) {
	ds, _, _, monoAddr := testWorld(t, nil)
	_, _, _, shAddr := testWorldSharded(t, 8, nil)
	mc := newClient(t, monoAddr, 2)
	sc := newClient(t, shAddr, 2)

	center := ds.Extent.Center()
	windows := []geom.Rect{
		{Min: geom.Point{X: center.X - 300, Y: center.Y - 300}, Max: geom.Point{X: center.X + 300, Y: center.Y + 300}},
		{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 12000, Y: 9000}},
		ds.Extent, // full extent: fans out to every shard
		{Min: geom.Point{X: -900, Y: -900}, Max: geom.Point{X: -100, Y: -100}}, // off-map: empty
	}
	for _, w := range windows {
		a, err := mc.RangeIDs(w)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc.RangeIDs(w)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDSets(a, b) {
			t.Fatalf("RangeIDs(%v): monolithic %d ids, sharded %d ids", w, len(a), len(b))
		}
	}

	for i := 0; i < 8; i++ {
		pt := ds.Seg(uint32(i * 997)).A
		a, err := mc.PointIDs(pt, DefaultPointEps)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sc.PointIDs(pt, DefaultPointEps)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDSets(a, b) {
			t.Fatalf("PointIDs(%v): monolithic %v, sharded %v", pt, a, b)
		}

		off := geom.Point{X: pt.X + 35, Y: pt.Y - 20}
		ra, err := mc.KNearest(off, 5)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := sc.KNearest(off, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("KNearest(%v): monolithic %d, sharded %d neighbors", off, len(ra), len(rb))
		}
	}
}

// TestShardedExecuteQueryZeroAlloc extends the hot-path allocation contract
// to the sharded executor: warm range, point, and k-NN queries through
// executeQuery must not allocate even when they scatter across lanes.
func TestShardedExecuteQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ds, _, srv, _ := testWorldSharded(t, 8, nil)
	center := ds.Extent.Center()
	wide := geom.Rect{ // spans many shards: forces the scatter path
		Min: geom.Point{X: center.X - 15000, Y: center.Y - 15000},
		Max: geom.Point{X: center.X + 15000, Y: center.Y + 15000},
	}
	queries := []*proto.QueryMsg{
		{ID: 1, Kind: proto.KindRange, Mode: proto.ModeIDs, Window: wide},
		{ID: 2, Kind: proto.KindRange, Mode: proto.ModeFilter, Window: wide},
		{ID: 3, Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: center},
		{ID: 4, Kind: proto.KindNN, Mode: proto.ModeIDs, Point: center},
		{ID: 5, Kind: proto.KindNN, Mode: proto.ModeIDs, Point: center, K: 8},
	}
	sc := srv.getScratch()
	if n := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			if _, ok := srv.executeQuery(q, sc, time.Time{}).(*proto.ErrorMsg); ok {
				t.Fatal("query failed")
			}
		}
	}); n != 0 {
		t.Fatalf("warm sharded executeQuery: %.2f allocs/op over %d queries, want 0", n, len(queries))
	}
}

// TestShardedServeContention drives a sharded server from many concurrent
// client connections — scatter-gather inside the server while the admission
// gate multiplexes requests across lanes. Under -race this exercises the
// full network + scatter stack for data races; everywhere it checks answers
// against the monolithic pool.
func TestShardedServeContention(t *testing.T) {
	ds, _, _, addr := testWorldSharded(t, 8, nil)
	tree, err := rtree.Build(ds.Items(), rtree.Config{}, ops.Null{})
	if err != nil {
		t.Fatal(err)
	}
	mono, err := parallel.New(ds, tree, 1)
	if err != nil {
		t.Fatal(err)
	}

	center := ds.Extent.Center()
	windows := make([]geom.Rect, 6)
	for i := range windows {
		h := float64(1000 * (i + 1))
		windows[i] = geom.Rect{
			Min: geom.Point{X: center.X - h, Y: center.Y - h},
			Max: geom.Point{X: center.X + h, Y: center.Y + h},
		}
	}
	want := make([][]uint32, len(windows))
	for i, w := range windows {
		want[i] = mono.Range(w)
	}

	const conns = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := newClient(t, addr, 1)
			for r := 0; r < 20; r++ {
				i := (c + r) % len(windows)
				got, err := cl.RangeIDs(windows[i])
				if err != nil {
					errs <- err
					return
				}
				if !equalIDSets(got, want[i]) {
					t.Errorf("conn %d round %d: sharded answer diverged", c, r)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func equalIDSets(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]uint32(nil), a...)
	bs := append([]uint32(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}
