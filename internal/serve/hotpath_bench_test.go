package serve

import (
	"bytes"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
)

// BenchmarkServeHotPath measures the warm in-process serve loop for one
// range query: frame decode → scratch-backed execution → frame encode →
// message release. ReportAllocs is the regression guard: this path must
// stay at 0 allocs/op.
func BenchmarkServeHotPath(b *testing.B) {
	ds, _, srv, _ := testWorld(b, nil)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 400, Y: center.Y - 400},
		Max: geom.Point{X: center.X + 400, Y: center.Y + 400},
	}
	frame, err := proto.EncodeMessage(&proto.QueryMsg{
		ID: 7, Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w})
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(nil)
	sc := srv.getScratch()
	var out []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(frame)
		msg, _, rerr := proto.ReadMessage(rd)
		if rerr != nil {
			b.Fatal(rerr)
		}
		resp := srv.execute(msg, sc, time.Time{})
		if out, rerr = proto.AppendFrame(out[:0], resp); rerr != nil {
			b.Fatal(rerr)
		}
		proto.ReleaseMessage(msg)
	}
}

// BenchmarkBatchVsSingle compares N single-query exchanges against one
// N-query batch over real loopback TCP. Reported metrics: queries/s and
// frames per query (from the client's wire counters) — the acceptance
// numbers in results/BENCH_hotpath.json come from this benchmark.
func BenchmarkBatchVsSingle(b *testing.B) {
	const batchN = 16
	run := func(b *testing.B, batched bool) {
		ds, _, _, addr := testWorld(b, nil)
		c := newClient(b, addr, 1)
		center := ds.Extent.Center()
		w := geom.Rect{
			Min: geom.Point{X: center.X - 400, Y: center.Y - 400},
			Max: geom.Point{X: center.X + 400, Y: center.Y + 400},
		}
		var qs []proto.QueryMsg
		for i := 0; i < batchN; i++ {
			qs = append(qs, proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w})
		}
		before := c.WireStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batched {
				if _, err := c.QueryBatch(qs); err != nil {
					b.Fatal(err)
				}
			} else {
				for j := 0; j < batchN; j++ {
					if _, err := c.RangeIDs(w); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		b.StopTimer()
		after := c.WireStats()
		queries := float64(after.Queries - before.Queries)
		frames := float64(after.FramesTx - before.FramesTx + after.FramesRx - before.FramesRx)
		bytesWire := float64(after.BytesTx - before.BytesTx + after.BytesRx - before.BytesRx)
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(queries/sec, "queries/s")
		}
		if queries > 0 {
			b.ReportMetric(frames/queries, "frames/query")
			b.ReportMetric(bytesWire/queries, "wirebytes/query")
		}
	}
	b.Run("single", func(b *testing.B) { run(b, false) })
	b.Run("batch16", func(b *testing.B) { run(b, true) })
}
