package serve

import (
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
)

// askNN sends one raw MsgNNQuery leg and decodes the reply.
func askNN(t *testing.T, nc net.Conn, id uint32, pt geom.Point, k uint16, bound float64) []proto.Neighbor {
	t.Helper()
	if _, err := proto.WriteMessage(nc, &proto.NNQueryMsg{ID: id, Point: pt, K: k, Bound: bound}); err != nil {
		t.Fatalf("write nn leg: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, _, err := proto.ReadMessage(nc)
	if err != nil {
		t.Fatalf("read nn reply: %v", err)
	}
	nm, ok := msg.(*proto.NeighborsMsg)
	if !ok {
		t.Fatalf("nn leg answered with %v: %+v", msg.Type(), msg)
	}
	if nm.ID != id {
		t.Fatalf("nn reply id %d, want %d", nm.ID, id)
	}
	out := append([]proto.Neighbor(nil), nm.Neighbors...)
	proto.ReleaseMessage(msg)
	return out
}

// TestNNLegMatchesPool answers MsgNNQuery legs on a sharded server and
// checks them against direct pool execution: exact distances, ascending
// order, and — with a finite bound — no lost neighbor below the bound.
func TestNNLegMatchesPool(t *testing.T) {
	ds, pool, _, addr := testWorldSharded(t, 8, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	ext := ds.Extent
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		pt := geom.Point{
			X: ext.Min.X + rng.Float64()*ext.Width(),
			Y: ext.Min.Y + rng.Float64()*ext.Height(),
		}
		k := 1 + rng.Intn(8)
		want, _ := pool.KNearest(pt, k)

		got := askNN(t, nc, uint32(100+i), pt, uint16(k), math.Inf(1))
		if len(got) != len(want) {
			t.Fatalf("k=%d: got %d neighbors, want %d", k, len(got), len(want))
		}
		for j := range got {
			if got[j].ID != want[j].ID || got[j].Dist != want[j].Dist {
				t.Fatalf("neighbor %d: got %+v want %+v", j, got[j], want[j])
			}
			if j > 0 && got[j].Dist < got[j-1].Dist {
				t.Fatalf("neighbors not ascending at %d", j)
			}
		}

		// A finite bound at the true k-th distance must keep every neighbor
		// strictly below it (the bound is a pruning hint, not a filter).
		if len(want) == 0 {
			continue
		}
		kth := want[len(want)-1].Dist
		bounded := askNN(t, nc, uint32(1000+i), pt, uint16(k), kth+1e-9)
		for j, nb := range want {
			if nb.Dist >= kth {
				break
			}
			if j >= len(bounded) || bounded[j].ID != nb.ID || bounded[j].Dist != nb.Dist {
				t.Fatalf("bounded leg lost neighbor %+v: got %+v", nb, bounded)
			}
		}
	}

	// K=0 means single nearest.
	pt := ext.Center()
	got := askNN(t, nc, 9999, pt, 0, 0)
	if nn := pool.Nearest(pt); nn.OK {
		if len(got) != 1 || got[0].ID != nn.ID || got[0].Dist != nn.Dist {
			t.Fatalf("k=0 leg: got %+v want %+v", got, nn)
		}
	}
}

// TestNNLegRejectsOversizeK checks the MaxKNN guard applies to NN legs.
func TestNNLegRejectsOversizeK(t *testing.T) {
	_, _, _, addr := testWorld(t, func(cfg *Config) { cfg.MaxKNN = 8 })
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := proto.WriteMessage(nc, &proto.NNQueryMsg{ID: 5, Point: geom.Point{X: 1, Y: 1}, K: 9}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	msg, _, err := proto.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	em, ok := msg.(*proto.ErrorMsg)
	if !ok || em.Code != proto.CodeBadRequest {
		t.Fatalf("got %v, want bad-request", msg.Type())
	}
}

// TestSummaryReply checks both deployment shapes: a monolithic server
// synthesizes one whole-key-space range; a server configured with explicit
// ranges reports them verbatim along with the cluster range count.
func TestSummaryReply(t *testing.T) {
	ask := func(addr string) *proto.SummaryMsg {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		if _, err := proto.WriteMessage(nc, &proto.SummaryReqMsg{ID: 42}); err != nil {
			t.Fatal(err)
		}
		nc.SetReadDeadline(time.Now().Add(5 * time.Second))
		msg, _, err := proto.ReadMessage(nc)
		if err != nil {
			t.Fatal(err)
		}
		sm, ok := msg.(*proto.SummaryMsg)
		if !ok {
			t.Fatalf("summary answered with %v", msg.Type())
		}
		if sm.ID != 42 {
			t.Fatalf("summary id %d", sm.ID)
		}
		return sm
	}

	ds, pool, _, monoAddr := testWorld(t, nil)
	sm := ask(monoAddr)
	if sm.NumRanges != 1 || len(sm.Ranges) != 1 {
		t.Fatalf("monolithic summary: %+v", sm)
	}
	if sm.Items != uint64(pool.Len()) || sm.Items != uint64(len(ds.Items())) {
		t.Fatalf("summary items %d, pool %d", sm.Items, pool.Len())
	}
	if r := sm.Ranges[0]; r.Lo != 0 || r.Hi != math.MaxUint64 || r.Index != 0 {
		t.Fatalf("synthetic range %+v", r)
	}
	if sm.Bounds != pool.Bounds() {
		t.Fatalf("summary bounds %v, pool %v", sm.Bounds, pool.Bounds())
	}

	ranges := []proto.RangeInfo{
		{Index: 2, Items: 10, Lo: 100, Hi: 200, MBR: geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 5, Y: 5}}},
		{Index: 3, Items: 20, Lo: 201, Hi: 300, MBR: geom.Rect{Min: geom.Point{X: 5, Y: 0}, Max: geom.Point{X: 9, Y: 5}}},
	}
	_, _, _, partAddr := testWorld(t, func(cfg *Config) {
		cfg.Ranges = ranges
		cfg.NumRanges = 5
	})
	sm = ask(partAddr)
	if sm.NumRanges != 5 || len(sm.Ranges) != len(ranges) {
		t.Fatalf("partitioned summary: %+v", sm)
	}
	for i, r := range sm.Ranges {
		if r != ranges[i] {
			t.Fatalf("range %d: got %+v want %+v", i, r, ranges[i])
		}
	}
}

// panicPool wraps an Executor with one query kind that panics — the fault
// model for TestPanicContainment.
type panicPool struct {
	Executor
}

func (p *panicPool) FilterPointAppend(dst []uint32, pt geom.Point) []uint32 {
	panic("injected executor fault")
}

// TestPanicContainment drives a panicking query and checks the request is
// answered CodeInternal, the server survives, and later queries (which
// reuse the scratch pool) still answer correctly.
func TestPanicContainment(t *testing.T) {
	ds, tree := testDataset(t)
	pool, err := parallel.New(ds, tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startServer(t, Config{Pool: &panicPool{Executor: pool}, Master: tree})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	if _, err := proto.WriteMessage(nc, &proto.QueryMsg{
		ID: 1, Kind: proto.KindPoint, Mode: proto.ModeFilter, Point: geom.Point{X: 1, Y: 1},
	}); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	msg, _, err := proto.ReadMessage(nc)
	if err != nil {
		t.Fatalf("panicking request dropped the connection: %v", err)
	}
	em, ok := msg.(*proto.ErrorMsg)
	if !ok || em.Code != proto.CodeInternal {
		t.Fatalf("got %v %+v, want internal error", msg.Type(), msg)
	}

	// The server must still answer ordinary queries afterwards.
	w := geom.Rect{Min: geom.Point{X: 0, Y: 0}, Max: geom.Point{X: 2000, Y: 2000}}
	if _, err := proto.WriteMessage(nc, &proto.QueryMsg{
		ID: 2, Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w,
	}); err != nil {
		t.Fatal(err)
	}
	msg, _, err = proto.ReadMessage(nc)
	if err != nil {
		t.Fatal(err)
	}
	lst, ok := msg.(*proto.IDListMsg)
	if !ok {
		t.Fatalf("post-panic query answered with %v", msg.Type())
	}
	if !sameIDs(lst.IDs, pool.Range(w)) {
		t.Fatal("post-panic answer mismatched")
	}
	if srv.Stats().Errors == 0 {
		t.Fatal("panic not counted as an error")
	}
}
