package serve

import (
	"math/rand"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
)

// TestBatchQueriesMatchPool answers a mixed batch over the wire and checks
// every item against direct pool execution.
func TestBatchQueriesMatchPool(t *testing.T) {
	ds, pool, srv, addr := testWorld(t, nil)
	c := newClient(t, addr, 2)
	ext := ds.Extent
	rng := rand.New(rand.NewSource(21))

	for round := 0; round < 10; round++ {
		var qs []proto.QueryMsg
		n := 1 + rng.Intn(16)
		for i := 0; i < n; i++ {
			cx := ext.Min.X + rng.Float64()*ext.Width()
			cy := ext.Min.Y + rng.Float64()*ext.Height()
			pt := geom.Point{X: cx, Y: cy}
			half := 100 + rng.Float64()*1200
			w := geom.Rect{
				Min: geom.Point{X: cx - half, Y: cy - half},
				Max: geom.Point{X: cx + half, Y: cy + half},
			}
			switch i % 4 {
			case 0:
				qs = append(qs, proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w})
			case 1:
				qs = append(qs, proto.QueryMsg{Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: pt})
			case 2:
				qs = append(qs, proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeFilter, Window: w})
			case 3:
				qs = append(qs, proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeData, Point: pt, K: 3})
			}
		}
		res, err := c.QueryBatch(qs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(res) != len(qs) {
			t.Fatalf("round %d: %d results for %d queries", round, len(res), len(qs))
		}
		for i, q := range qs {
			if res[i].Err != nil {
				t.Fatalf("round %d item %d: %v", round, i, res[i].Err)
			}
			switch i % 4 {
			case 0:
				if want := pool.Range(q.Window); !sameIDs(res[i].IDs, want) {
					t.Fatalf("round %d item %d: range mismatch", round, i)
				}
			case 1:
				if want := pool.Point(q.Point, srv.cfg.PointEps); !sameIDs(res[i].IDs, want) {
					t.Fatalf("round %d item %d: point mismatch", round, i)
				}
			case 2:
				if want := pool.FilterRange(q.Window); !sameIDs(res[i].IDs, want) {
					t.Fatalf("round %d item %d: filter mismatch", round, i)
				}
			case 3:
				nbs, _ := pool.KNearest(q.Point, 3)
				if len(res[i].Records) != len(nbs) {
					t.Fatalf("round %d item %d: knn got %d recs want %d", round, i, len(res[i].Records), len(nbs))
				}
				for j, nb := range nbs {
					if res[i].Records[j].ID != nb.ID {
						t.Fatalf("round %d item %d: knn rec %d id %d want %d", round, i, j, res[i].Records[j].ID, nb.ID)
					}
					if res[i].Records[j].Seg != ds.Seg(nb.ID) {
						t.Fatalf("round %d item %d: knn rec %d segment mismatch", round, i, j)
					}
				}
			}
		}
	}

	st := srv.Stats()
	if st.Batches < 10 {
		t.Fatalf("server counted %d batches, want >= 10", st.Batches)
	}
	if st.BatchQueries == 0 || st.BatchQueries < st.Batches {
		t.Fatalf("implausible batch query count %d", st.BatchQueries)
	}
}

// TestBatchPerItemError checks that one bad query mid-batch fails only its
// own item.
func TestBatchPerItemError(t *testing.T) {
	ds, pool, _, addr := testWorld(t, nil)
	c := newClient(t, addr, 1)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 500, Y: center.Y - 500},
		Max: geom.Point{X: center.X + 500, Y: center.Y + 500},
	}
	qs := []proto.QueryMsg{
		{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w},
		{Kind: proto.KindNN, Mode: proto.ModeIDs, Point: center, K: 2000}, // over MaxKNN=1024
		{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w},
	}
	res, err := c.QueryBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if res[1].Err == nil {
		t.Fatal("over-limit k answered without error")
	}
	if em, ok := res[1].Err.(*proto.ErrorMsg); !ok || em.Code != proto.CodeBadRequest {
		t.Fatalf("item error = %v, want CodeBadRequest", res[1].Err)
	}
	want := pool.Range(w)
	for _, i := range []int{0, 2} {
		if res[i].Err != nil || !sameIDs(res[i].IDs, want) {
			t.Fatalf("healthy item %d failed alongside the bad one: %v", i, res[i].Err)
		}
	}
}

// TestBatchClientValidation covers the client-side batch size checks.
func TestBatchClientValidation(t *testing.T) {
	_, _, _, addr := testWorld(t, nil)
	c := newClient(t, addr, 1)
	if _, err := c.QueryBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	big := make([]proto.QueryMsg, proto.MaxBatchQueries+1)
	for i := range big {
		big[i] = proto.QueryMsg{Kind: proto.KindPoint, Mode: proto.ModeIDs}
	}
	if _, err := c.QueryBatch(big); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

// TestBatchWireAmortization checks the acceptance arithmetic end to end: N
// queries per batch must cost one frame exchange, so frames/query shrinks by
// the batch factor against single queries.
func TestBatchWireAmortization(t *testing.T) {
	ds, _, _, addr := testWorld(t, nil)
	c := newClient(t, addr, 1)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 300, Y: center.Y - 300},
		Max: geom.Point{X: center.X + 300, Y: center.Y + 300},
	}

	before := c.WireStats()
	for i := 0; i < 4; i++ {
		if _, err := c.RangeIDs(w); err != nil {
			t.Fatal(err)
		}
	}
	mid := c.WireStats()
	if got := mid.FramesTx - before.FramesTx; got != 4 {
		t.Fatalf("4 single queries cost %d tx frames, want 4", got)
	}

	qs := make([]proto.QueryMsg, 16)
	for i := range qs {
		qs[i] = proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w}
	}
	if _, err := c.QueryBatch(qs); err != nil {
		t.Fatal(err)
	}
	after := c.WireStats()
	if got := after.FramesTx - mid.FramesTx; got != 1 {
		t.Fatalf("a 16-query batch cost %d tx frames, want 1", got)
	}
	if got := after.Queries - mid.Queries; got != 16 {
		t.Fatalf("batch counted %d queries, want 16", got)
	}
}
