// cache.go: the server-side result-cache path. Mobile query workloads are
// hotspot-shaped — many clients near the same junction ask nearly the same
// question — so the serving tier checks an epoch-invalidated cache
// (internal/qcache) before walking the index. Keys are cell-snapped: the
// cache stores the result over the snapped superset window and this file
// refines it down to the exact query on the way out, so a hit is
// indistinguishable from re-execution.
//
// Soundness of each refinement, against the uncached executor:
//
//   - KindRange stores RangeAppend(snap) — segments intersecting the snapped
//     window. snap ⊇ window, and segment∩window ⇒ segment∩snap, so keeping
//     exactly the segments with IntersectsRect(window) reproduces
//     RangeAppend(window). Order is preserved too: a packed-tree DFS reports
//     ids in a window-independent subsequence of tree order, so filtering the
//     superset sequence yields the exact query's sequence.
//   - KindRangeFilter stores FilterRangeAppend(snap) — candidate ids whose
//     MBR intersects the snapped window — refined with MBR.Intersects(window).
//   - KindCell stores FilterRangeAppend(cell) for the one grid cell holding
//     the query point, and serves every point-query mode: the uncached exact
//     path is MBR-contains-point then segment-distance ≤ eps, the filter path
//     is MBR-contains-point alone, and both predicates imply MBR∩cell for any
//     point inside the cell. eps is applied here, at refinement, which is why
//     it is not in the key.
//   - KindNN stores the exact k-nearest answer (ids, distances, geometry)
//     for the exact point: no refinement at all.
//
// Every stored entry also carries its geometry so a hit never resolves
// segments through the pool (mutable.Pool.SegOf takes the pool-wide owner
// lock per id — per-hit lock traffic would serialize the readers the cache
// exists to speed up).
package serve

import (
	"fmt"
	"math"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/parallel"
	"mobispatial/internal/proto"
	"mobispatial/internal/qcache"
	"mobispatial/internal/rtree"
)

// nnRegion is the validity region of a nearest-neighbor query: NN searches
// have no window, so every non-empty shard participates in the view.
var nnRegion = geom.Rect{
	Min: geom.Point{X: math.Inf(-1), Y: math.Inf(-1)},
	Max: geom.Point{X: math.Inf(1), Y: math.Inf(1)},
}

// epochHint fingerprints the live index state for reply stamping; 0 when the
// server has no validity view (distributed pools).
func (s *Server) epochHint() uint64 {
	if s.qsrc == nil {
		return 0
	}
	return qcache.HintOf(s.qsrc)
}

// CacheStats returns the query-result cache counters; the zero Stats when
// caching is disabled.
func (s *Server) CacheStats() qcache.Stats {
	if s.qc == nil {
		return qcache.Stats{}
	}
	return s.qc.Stats()
}

// CacheSavedJoules returns the modeled server-compute energy the cache has
// saved so far: each hit priced as one mean miss execution.
func (s *Server) CacheSavedJoules() float64 {
	j, _ := s.em.Compute(float64(s.savedNanos.Load()) / 1e9)
	return j
}

// noteMiss feeds one superset execution into the mean-miss-cost estimate.
func (s *Server) noteMiss(d time.Duration) {
	s.missNanos.Add(int64(d))
	s.missCount.Add(1)
}

// noteHit credits one hit with the current mean miss cost and republishes
// the saved-energy gauge.
func (s *Server) noteHit() {
	n := s.missCount.Load()
	if n == 0 {
		return
	}
	saved := s.savedNanos.Add(s.missNanos.Load() / n)
	j, _ := s.em.Compute(float64(saved) / 1e9)
	s.metrics.cacheSavedJ.Set(j)
}

// runQueryCached answers one QueryMsg through the cache. handled=false means
// the query shape is uncacheable (the caller falls through to the uncached
// path); otherwise ids (and the aligned segs) are the exact refined answer,
// or code/text the error. Returned slices alias sc's cache buffers and are
// valid until the scratch is reused.
func (s *Server) runQueryCached(q *proto.QueryMsg, sc *reqScratch, deadline time.Time) (ids []uint32, segs []geom.Segment, code proto.ErrCode, text string, handled bool) {
	var (
		key   qcache.Key
		super geom.Rect
		ok    bool
		k     int
		cell  = s.qc.CellSize()
	)
	switch q.Kind {
	case proto.KindRange:
		key, super, ok = qcache.RangeKey(q.Window, cell, q.Mode == proto.ModeFilter)
	case proto.KindPoint:
		key, super, ok = qcache.PointKey(q.Point, cell)
	case proto.KindNN:
		k = int(q.K)
		if k <= 0 {
			k = 1
		}
		if k > s.cfg.MaxKNN {
			return nil, nil, proto.CodeBadRequest,
				fmt.Sprintf("k=%d exceeds limit %d", k, s.cfg.MaxKNN), true
		}
		key, ok = qcache.NNKey(q.Point, k)
		super = nnRegion
	default:
		return nil, nil, proto.CodeBadRequest, "unknown query kind", true
	}
	if !ok {
		s.qc.Bypass()
		return nil, nil, 0, "", false
	}
	if code, text, ok := s.lookupOrFill(key, super, q.Point, k, sc, deadline); !ok {
		return nil, nil, code, text, code != 0
	}
	eps := q.Eps
	if eps <= 0 {
		eps = s.cfg.PointEps
	}
	ids, segs = refineCached(key.Kind(), q, eps, sc.cids, sc.csegs)
	return ids, segs, 0, "", true
}

// cachedNN answers one router NN leg (unbounded only) through the cache,
// sharing the KindNN key space with single-query NN traffic. The returned
// slices alias sc's cache buffers.
func (s *Server) cachedNN(pt geom.Point, k int, sc *reqScratch, deadline time.Time) (ids []uint32, dists []float64, code proto.ErrCode, text string, handled bool) {
	key, ok := qcache.NNKey(pt, k)
	if !ok {
		s.qc.Bypass()
		return nil, nil, 0, "", false
	}
	if code, text, ok := s.lookupOrFill(key, nnRegion, pt, k, sc, deadline); !ok {
		return nil, nil, code, text, code != 0
	}
	return sc.cids, sc.cdists, 0, "", true
}

// lookupOrFill is the shared hit/miss engine: build the pre view, probe the
// cache, and on a miss execute the superset, revalidate, and store. On
// return with ok=true, sc.cids/csegs/cdists hold the superset payload.
// ok=false with code=0 means the superset execution was declined (fall
// through to the uncached path); with code!=0, a hard error.
func (s *Server) lookupOrFill(key qcache.Key, region geom.Rect, pt geom.Point, k int, sc *reqScratch, deadline time.Time) (code proto.ErrCode, text string, ok bool) {
	qcache.BuildView(s.qsrc, region, &sc.pre)
	var hit bool
	sc.cids, sc.csegs, sc.cdists, hit = s.qc.Get(key, &sc.pre, sc.cids[:0], sc.csegs[:0], sc.cdists[:0])
	if hit {
		s.noteHit()
		return 0, "", true
	}
	start := time.Now()
	if code, text, ok = s.runSuperset(key, region, pt, k, sc, deadline); !ok || code != 0 {
		return code, text, false
	}
	s.noteMiss(time.Since(start))
	qcache.BuildView(s.qsrc, region, &sc.post)
	s.qc.Put(key, &sc.pre, &sc.post, sc.cids, sc.csegs, sc.cdists)
	return 0, "", true
}

// runSuperset executes the snapped superset query into sc.cids/csegs/cdists.
// ok=false (with code=0) means the pool declined the shape. A deadline-
// capable pool (the router) runs through its fallible surface: a fan-out
// error fails the fill instead of silently storing a partial answer — a
// cache poisoned with a degraded result would keep serving it after the
// cluster recovered.
func (s *Server) runSuperset(key qcache.Key, super geom.Rect, pt geom.Point, k int, sc *reqScratch, deadline time.Time) (code proto.ErrCode, text string, ok bool) {
	pool := s.cfg.Pool
	sc.cids, sc.csegs, sc.cdists = sc.cids[:0], sc.csegs[:0], sc.cdists[:0]
	var err error
	switch key.Kind() {
	case qcache.KindRange:
		if s.dx != nil {
			sc.cids, err = s.dx.RangeAppendUntil(sc.cids, super, deadline)
		} else {
			sc.cids = pool.RangeAppend(sc.cids, super)
		}
	case qcache.KindRangeFilter, qcache.KindCell:
		if s.dx != nil {
			sc.cids, err = s.dx.FilterRangeAppendUntil(sc.cids, super, deadline)
		} else {
			sc.cids = pool.FilterRangeAppend(sc.cids, super)
		}
	case qcache.KindNN:
		switch {
		case k > 1 && s.dx != nil:
			var nbs []rtree.Neighbor
			nbs, err = s.dx.KNearestAppendUntil(sc.nbs[:0], pt, k, &sc.psc, deadline)
			sc.nbs = nbs
			for _, nb := range nbs {
				sc.cids = append(sc.cids, nb.ID)
				sc.cdists = append(sc.cdists, nb.Dist)
			}
		case k > 1:
			nbs, kok := pool.KNearestAppend(sc.nbs[:0], pt, k, &sc.psc)
			sc.nbs = nbs
			if !kok {
				return proto.CodeUnsupported, "access method does not support k-NN", false
			}
			for _, nb := range nbs {
				sc.cids = append(sc.cids, nb.ID)
				sc.cdists = append(sc.cdists, nb.Dist)
			}
		case s.dx != nil:
			var nn parallel.NearestResult
			nn, err = s.dx.NearestUntil(pt, &sc.psc, deadline)
			if err == nil && nn.OK {
				sc.cids = append(sc.cids, nn.ID)
				sc.cdists = append(sc.cdists, nn.Dist)
			}
		default:
			if nn := pool.NearestWith(pt, &sc.psc); nn.OK {
				sc.cids = append(sc.cids, nn.ID)
				sc.cdists = append(sc.cdists, nn.Dist)
			}
		}
	}
	if err != nil {
		code, text = errToCode(err)
		return code, text, false
	}
	ds := pool.Dataset()
	for _, id := range sc.cids {
		sc.csegs = append(sc.csegs, s.segOf(ds, id))
	}
	return 0, "", true
}

// segMBR is Segment.MBR with plain comparisons. math.Min/Max carry NaN/±0
// semantics the refinement loop does not need, are not inlined, and at
// cache-hit rates they dominate the whole hit path (profiled at ~30%).
func segMBR(sg geom.Segment) geom.Rect {
	r := geom.Rect{Min: sg.A, Max: sg.B}
	if r.Max.X < r.Min.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Max.Y < r.Min.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// refineCached filters the superset payload down to the exact query in
// place, preserving order.
func refineCached(kind qcache.Kind, q *proto.QueryMsg, eps float64, ids []uint32, segs []geom.Segment) ([]uint32, []geom.Segment) {
	n := 0
	w := q.Window
	pt := q.Point
	switch kind {
	case qcache.KindRange:
		for i, sg := range segs {
			// MBR screen first: a superset segment is usually wholly inside
			// the window (accept: both endpoints in ⇒ intersects) or wholly
			// outside (reject); only boundary straddlers pay the exact test.
			mbr := segMBR(sg)
			if mbr.Max.X < w.Min.X || mbr.Min.X > w.Max.X || mbr.Max.Y < w.Min.Y || mbr.Min.Y > w.Max.Y {
				continue
			}
			inside := mbr.Min.X >= w.Min.X && mbr.Max.X <= w.Max.X &&
				mbr.Min.Y >= w.Min.Y && mbr.Max.Y <= w.Max.Y
			if inside || sg.IntersectsRect(w) {
				ids[n], segs[n] = ids[i], sg
				n++
			}
		}
	case qcache.KindRangeFilter:
		for i, sg := range segs {
			mbr := segMBR(sg)
			if mbr.Max.X < w.Min.X || mbr.Min.X > w.Max.X || mbr.Max.Y < w.Min.Y || mbr.Min.Y > w.Max.Y {
				continue
			}
			ids[n], segs[n] = ids[i], sg
			n++
		}
	case qcache.KindCell:
		for i, sg := range segs {
			mbr := segMBR(sg)
			if pt.X < mbr.Min.X || pt.X > mbr.Max.X || pt.Y < mbr.Min.Y || pt.Y > mbr.Max.Y {
				continue
			}
			// Exact incidence in the uncached path's order: the tree search
			// filters by MBR∋pt, then distance ≤ eps refines — unless the
			// query only wants the MBR filter.
			if q.Mode == proto.ModeFilter || sg.ContainsPoint(pt, eps) {
				ids[n], segs[n] = ids[i], sg
				n++
			}
		}
	case qcache.KindNN:
		return ids, segs // stored exact; nothing to refine
	}
	return ids[:n], segs[:n]
}
