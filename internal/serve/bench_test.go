package serve

import (
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/obs"
)

// benchServe measures end-to-end point queries over loopback with and
// without the obs hub — the <5% overhead claim in DESIGN.md §10 comes from
// comparing these two.
func benchServe(b *testing.B, hub *obs.Hub) {
	ds, _, _, addr := testWorld(b, func(cfg *Config) { cfg.Obs = hub })
	c := newClient(b, addr, 4)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 400, Y: center.Y - 400},
		Max: geom.Point{X: center.X + 400, Y: center.Y + 400},
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.RangeIDs(w); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkServeRangeObsOff(b *testing.B) { benchServe(b, nil) }

func BenchmarkServeRangeObsOn(b *testing.B) { benchServe(b, obs.NewHub()) }
