package serve

import (
	"bytes"
	"testing"
	"time"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
)

// TestExecuteQueryZeroAlloc pins the warm single-query serve path — decode,
// index walk, response build — at zero heap allocations per query for every
// kind and mode the hot path serves.
func TestExecuteQueryZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ds, _, srv, _ := testWorld(t, nil)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 400, Y: center.Y - 400},
		Max: geom.Point{X: center.X + 400, Y: center.Y + 400},
	}
	queries := []*proto.QueryMsg{
		{ID: 1, Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w},
		{ID: 2, Kind: proto.KindRange, Mode: proto.ModeData, Window: w},
		{ID: 3, Kind: proto.KindRange, Mode: proto.ModeFilter, Window: w},
		{ID: 4, Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: center},
		{ID: 5, Kind: proto.KindNN, Mode: proto.ModeIDs, Point: center},
		{ID: 6, Kind: proto.KindNN, Mode: proto.ModeIDs, Point: center, K: 8},
	}
	sc := srv.getScratch()
	if n := testing.AllocsPerRun(200, func() {
		for _, q := range queries {
			if _, ok := srv.executeQuery(q, sc, time.Time{}).(*proto.ErrorMsg); ok {
				t.Fatal("query failed")
			}
		}
	}); n != 0 {
		t.Fatalf("warm executeQuery: %.2f allocs/op over %d queries, want 0", n, len(queries))
	}
}

// TestExecuteBatchZeroAlloc does the same for a warm fixed-shape batch.
func TestExecuteBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ds, _, srv, _ := testWorld(t, nil)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 400, Y: center.Y - 400},
		Max: geom.Point{X: center.X + 400, Y: center.Y + 400},
	}
	batch := &proto.BatchQueryMsg{ID: 9}
	for i := 0; i < 16; i++ {
		batch.Queries = append(batch.Queries, proto.QueryMsg{
			ID: uint32(i), Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w})
	}
	sc := srv.getScratch()
	if n := testing.AllocsPerRun(100, func() {
		if _, ok := srv.executeBatch(batch, sc, time.Time{}).(*proto.ErrorMsg); ok {
			t.Fatal("batch failed")
		}
	}); n != 0 {
		t.Fatalf("warm executeBatch: %.2f allocs/op, want 0", n)
	}
}

// TestServeHotPathLoopZeroAlloc runs the full in-process request loop —
// frame decode, execute with scratch, frame encode, message release — and
// requires zero allocations once warm. This is the serve-side half of the
// wire pooling contract (the other half lives in proto's alloc tests).
func TestServeHotPathLoopZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under -race")
	}
	ds, _, srv, _ := testWorld(t, nil)
	center := ds.Extent.Center()
	w := geom.Rect{
		Min: geom.Point{X: center.X - 400, Y: center.Y - 400},
		Max: geom.Point{X: center.X + 400, Y: center.Y + 400},
	}
	frame, err := proto.EncodeMessage(&proto.QueryMsg{
		ID: 7, Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w})
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(nil)
	sc := srv.getScratch()
	var out []byte
	if n := testing.AllocsPerRun(200, func() {
		rd.Reset(frame)
		msg, _, rerr := proto.ReadMessage(rd)
		if rerr != nil {
			t.Fatal(rerr)
		}
		resp := srv.execute(msg, sc, time.Time{})
		out, rerr = proto.AppendFrame(out[:0], resp)
		if rerr != nil {
			t.Fatal(rerr)
		}
		proto.ReleaseMessage(msg)
	}); n != 0 {
		t.Fatalf("warm serve loop: %.2f allocs/op, want 0", n)
	}
}
