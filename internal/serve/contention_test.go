package serve

import (
	"math/rand"
	"net"
	"sync"
	"testing"

	"mobispatial/internal/geom"
	"mobispatial/internal/proto"
)

// TestPipelinedBatchContention hammers ONE server connection with pipelined
// single queries and batches from many goroutines and cross-checks every
// response against serial pool reference answers. Under -race this is the
// proof that the pooled request scratch, the pooled wire messages, and the
// flush-coalescing writer don't share state across concurrent requests.
func TestPipelinedBatchContention(t *testing.T) {
	ds, pool, _, addr := testWorld(t, nil)
	ext := ds.Extent

	const writers = 8
	const perW = 30 // requests per writer; roughly half are batches

	// Build every request and its reference answer serially up front.
	type pending struct {
		req  proto.Message
		want [][]uint32 // one element for singles, one per item for batches
	}
	var all []pending
	nextID := uint32(1)
	rng := rand.New(rand.NewSource(99))
	mkQuery := func() (proto.QueryMsg, []uint32) {
		cx := ext.Min.X + rng.Float64()*ext.Width()
		cy := ext.Min.Y + rng.Float64()*ext.Height()
		pt := geom.Point{X: cx, Y: cy}
		half := 50 + rng.Float64()*1000
		w := geom.Rect{
			Min: geom.Point{X: cx - half, Y: cy - half},
			Max: geom.Point{X: cx + half, Y: cy + half},
		}
		switch rng.Intn(4) {
		case 0:
			return proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeIDs, Window: w}, pool.Range(w)
		case 1:
			return proto.QueryMsg{Kind: proto.KindPoint, Mode: proto.ModeIDs, Point: pt}, pool.Point(pt, DefaultPointEps)
		case 2:
			return proto.QueryMsg{Kind: proto.KindRange, Mode: proto.ModeFilter, Window: w}, pool.FilterRange(w)
		default:
			k := 1 + rng.Intn(6)
			var ids []uint32
			nbs, _ := pool.KNearest(pt, k)
			for _, nb := range nbs {
				ids = append(ids, nb.ID)
			}
			return proto.QueryMsg{Kind: proto.KindNN, Mode: proto.ModeIDs, Point: pt, K: uint16(k)}, ids
		}
	}
	for i := 0; i < writers*perW; i++ {
		if i%2 == 0 {
			q, want := mkQuery()
			q.ID = nextID
			nextID++
			qm := q // heap copy with its own ID
			all = append(all, pending{req: &qm, want: [][]uint32{want}})
		} else {
			n := 1 + rng.Intn(8)
			bm := &proto.BatchQueryMsg{ID: nextID}
			nextID++
			var wants [][]uint32
			for j := 0; j < n; j++ {
				q, want := mkQuery()
				bm.Queries = append(bm.Queries, q)
				wants = append(wants, want)
			}
			all = append(all, pending{req: bm, want: wants})
		}
	}
	expect := make(map[uint32][][]uint32, len(all))
	for _, p := range all {
		expect[p.req.RequestID()] = p.want
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Writers share the connection behind one mutex; responses interleave
	// arbitrarily and are matched by request id.
	var wmu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * perW; i < (w+1)*perW; i++ {
				wmu.Lock()
				_, werr := proto.WriteMessage(nc, all[i].req)
				wmu.Unlock()
				if werr != nil {
					t.Errorf("write: %v", werr)
					return
				}
			}
		}(w)
	}

	seen := make(map[uint32]bool, len(all))
	for len(seen) < len(all) {
		msg, _, rerr := proto.ReadMessage(nc)
		if rerr != nil {
			t.Fatalf("read after %d/%d responses: %v", len(seen), len(all), rerr)
		}
		id := msg.RequestID()
		want, ok := expect[id]
		if !ok || seen[id] {
			t.Fatalf("unexpected or duplicate response id %d", id)
		}
		seen[id] = true
		switch m := msg.(type) {
		case *proto.IDListMsg:
			if len(want) != 1 || !sameIDs(m.IDs, want[0]) {
				t.Fatalf("id %d: single answer diverged under contention", id)
			}
		case *proto.BatchReplyMsg:
			if len(m.Items) != len(want) {
				t.Fatalf("id %d: %d items, want %d", id, len(m.Items), len(want))
			}
			for j := range m.Items {
				if m.Items[j].Err != 0 {
					t.Fatalf("id %d item %d: error %v", id, j, m.Items[j].Err)
				}
				if !sameIDs(m.Items[j].IDs, want[j]) {
					t.Fatalf("id %d item %d: batch answer diverged under contention", id, j)
				}
			}
		default:
			t.Fatalf("id %d: unexpected %v response", id, msg.Type())
		}
		proto.ReleaseMessage(msg)
	}
	wg.Wait()
}
