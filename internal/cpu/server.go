package cpu

import (
	"fmt"

	"mobispatial/internal/cache"
	"mobispatial/internal/ops"
)

// ServerConfig is the resource-rich server of Table 4: a 4-issue SimpleScalar-
// style superscalar at 1 GHz with 32 KB 2-way L1 caches (64 B lines) and a
// 1 MB 2-way unified L2 (128 B lines). Only performance cycles are modeled —
// the paper assumes the wall-powered server has no energy constraint (§5.3).
type ServerConfig struct {
	ClockHz float64
	// IssueWidth is the superscalar width (Table 4: ILP = 4).
	IssueWidth int
	// IPCEfficiency derates the peak issue width for this pointer-chasing
	// integer workload (branch misprediction, RUU stalls); the effective
	// IPC is IssueWidth × IPCEfficiency.
	IPCEfficiency float64
	ICache        cache.Config
	DCache        cache.Config
	L2            cache.Config
	// L2Latency is the L1-miss service time in cycles when the line hits
	// in L2.
	L2Latency int
	// MemLatency is the L2-miss service time in cycles.
	MemLatency int
	// OverlapFactor is the fraction of miss latency the out-of-order core
	// hides (0 = fully exposed, 1 = fully hidden).
	OverlapFactor float64
	OpCosts       *[ops.NumOps]OpCost
}

// DefaultServerConfig returns Table 4 with a 1 GHz clock.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		ClockHz:       1e9,
		IssueWidth:    4,
		IPCEfficiency: 0.65, // ~2.6 IPC on integer index code
		ICache:        cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 2},
		DCache:        cache.Config{SizeBytes: 32 * 1024, LineBytes: 64, Assoc: 2},
		L2:            cache.Config{SizeBytes: 1024 * 1024, LineBytes: 128, Assoc: 2},
		L2Latency:     12,
		MemLatency:    100,
		OverlapFactor: 0.4,
	}
}

// Server is the SimpleScalar-style server model. It implements ops.Recorder
// and produces only cycles (plus activity for completeness).
type Server struct {
	cfg        ServerConfig
	costs      [ops.NumOps]OpCost
	icache     *cache.Cache
	dcache     *cache.Cache
	l2         *cache.Cache
	act        Activity
	fracCycles float64 // fractional-cycle carry from instruction issue
	opCodeBase [ops.NumOps]uint64
}

// NewServer builds a server model.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.ClockHz <= 0 || cfg.IssueWidth <= 0 || cfg.IPCEfficiency <= 0 || cfg.IPCEfficiency > 1 {
		return nil, fmt.Errorf("cpu: bad server core config %+v", cfg)
	}
	for _, cc := range []cache.Config{cfg.ICache, cfg.DCache, cfg.L2} {
		if err := cc.Validate(); err != nil {
			return nil, err
		}
	}
	if cfg.L2Latency <= 0 || cfg.MemLatency <= 0 || cfg.OverlapFactor < 0 || cfg.OverlapFactor >= 1 {
		return nil, fmt.Errorf("cpu: bad server memory config %+v", cfg)
	}
	s := &Server{
		cfg:    cfg,
		icache: cache.New(cfg.ICache),
		dcache: cache.New(cfg.DCache),
		l2:     cache.New(cfg.L2),
	}
	s.icache.Lower = s.l2
	s.dcache.Lower = s.l2
	if cfg.OpCosts != nil {
		s.costs = *cfg.OpCosts
	} else {
		s.costs = DefaultOpCosts()
	}
	addr := ops.CodeBase
	for i := range s.opCodeBase {
		s.opCodeBase[i] = addr
		addr += uint64(s.costs[i].CodeBytes())
		if rem := addr % uint64(cfg.ICache.LineBytes); rem != 0 {
			addr += uint64(cfg.ICache.LineBytes) - rem
		}
	}
	return s, nil
}

// Config returns the server configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// ClockHz returns the server clock.
func (s *Server) ClockHz() float64 { return s.cfg.ClockHz }

// Op implements ops.Recorder.
func (s *Server) Op(op ops.Op, n int) {
	if n <= 0 {
		return
	}
	cost := s.costs[op]
	instr := int64(cost.Instr) * int64(n)
	s.act.Instructions += instr

	// Issue cycles at the derated IPC, carrying the fractional remainder.
	ipc := float64(s.cfg.IssueWidth) * s.cfg.IPCEfficiency
	s.fracCycles += float64(instr) / ipc
	whole := int64(s.fracCycles)
	s.fracCycles -= float64(whole)
	s.act.Cycles += whole

	s.act.ICache.Accesses += instr
	s.act.ICache.Reads += instr
	l2Before := s.l2.Stats().Misses
	_, misses := s.icache.Access(s.opCodeBase[op], cost.CodeBytes(), false)
	s.chargeMisses(int64(misses), s.l2.Stats().Misses-l2Before)
}

// Load implements ops.Recorder.
func (s *Server) Load(addr uint64, size int) { s.dataAccess(addr, size, false) }

// Store implements ops.Recorder.
func (s *Server) Store(addr uint64, size int) { s.dataAccess(addr, size, true) }

func (s *Server) dataAccess(addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	l2Before := s.l2.Stats().Misses
	accesses, misses := s.dcache.Access(addr, size, write)
	s.act.DCache.Accesses += int64(accesses)
	if write {
		s.act.DCache.Writes += int64(accesses)
	} else {
		s.act.DCache.Reads += int64(accesses)
	}
	s.act.DCache.Misses += int64(misses)
	s.chargeMisses(int64(misses), s.l2.Stats().Misses-l2Before)
}

// chargeMisses adds the exposed portion of L1/L2 miss latency. l1Misses that
// hit in L2 cost L2Latency; the l2Misses subset costs MemLatency instead.
func (s *Server) chargeMisses(l1Misses, l2Misses int64) {
	if l1Misses == 0 {
		return
	}
	l2Hits := l1Misses - l2Misses
	if l2Hits < 0 {
		l2Hits = 0
	}
	exposed := 1 - s.cfg.OverlapFactor
	stall := int64(exposed * (float64(l2Hits)*float64(s.cfg.L2Latency) +
		float64(l2Misses)*float64(s.cfg.MemLatency)))
	s.act.Cycles += stall
	s.act.StallCycles += stall
	s.act.MemReads += l2Misses
}

// Activity returns the accumulated activity.
func (s *Server) Activity() Activity {
	act := s.act
	act.ICache.Misses = s.icache.Stats().Misses
	act.L2 = s.l2.Stats()
	act.MemWrites = s.l2.Stats().WriteBack
	return act
}

// Cycles returns the accumulated server cycles (the paper's Cw2).
func (s *Server) Cycles() int64 { return s.act.Cycles }

// Seconds converts cycles to wall time at the server clock.
func (s *Server) Seconds(cycles int64) float64 { return float64(cycles) / s.cfg.ClockHz }

// Reset clears activity and cache contents.
func (s *Server) Reset() {
	s.act = Activity{}
	s.fracCycles = 0
	s.icache.Reset()
	s.dcache.Reset()
	s.l2.Reset()
}

// ResetActivity clears counters but keeps the caches warm (the paper assumes
// server-side locality keeps index and data cached, §5.3).
func (s *Server) ResetActivity() {
	s.act = Activity{}
	s.fracCycles = 0
	s.icache.ResetStatsOnly()
	s.dcache.ResetStatsOnly()
	s.l2.ResetStatsOnly()
}
