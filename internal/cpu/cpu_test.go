package cpu

import (
	"testing"

	"mobispatial/internal/cache"
	"mobispatial/internal/ops"
)

func newTestClient(t *testing.T) *Client {
	t.Helper()
	c, err := NewClient(DefaultClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClientValidation(t *testing.T) {
	bad := DefaultClientConfig()
	bad.ClockHz = 0
	if _, err := NewClient(bad); err == nil {
		t.Error("zero clock accepted")
	}
	bad = DefaultClientConfig()
	bad.ICache = cache.Config{SizeBytes: 100, LineBytes: 32, Assoc: 4}
	if _, err := NewClient(bad); err == nil {
		t.Error("bad I-cache geometry accepted")
	}
	bad = DefaultClientConfig()
	bad.MemLatency = 0
	if _, err := NewClient(bad); err == nil {
		t.Error("zero memory latency accepted")
	}
}

func TestDefaultClientMatchesTable3(t *testing.T) {
	cfg := DefaultClientConfig()
	if cfg.ICache.SizeBytes != 16*1024 || cfg.ICache.Assoc != 4 || cfg.ICache.LineBytes != 32 {
		t.Errorf("I-cache config %+v not Table 3", cfg.ICache)
	}
	if cfg.DCache.SizeBytes != 8*1024 || cfg.DCache.Assoc != 4 || cfg.DCache.LineBytes != 32 {
		t.Errorf("D-cache config %+v not Table 3", cfg.DCache)
	}
	if cfg.MemLatency != 100 {
		t.Errorf("memory latency %d, want 100", cfg.MemLatency)
	}
	if cfg.ClockHz != 1e9/8 {
		t.Errorf("default client clock %v, want MhzS/8", cfg.ClockHz)
	}
}

func TestClientOpAccounting(t *testing.T) {
	c := newTestClient(t)
	costs := DefaultOpCosts()
	c.Op(ops.OpMBRTest, 10)
	act := c.Activity()
	wantInstr := int64(costs[ops.OpMBRTest].Instr) * 10
	if act.Instructions != wantInstr {
		t.Fatalf("instructions = %d, want %d", act.Instructions, wantInstr)
	}
	// Single issue: cycles >= instructions, extra is stall from the single
	// cold I-cache fill.
	if act.Cycles < act.Instructions {
		t.Fatalf("cycles %d < instructions %d", act.Cycles, act.Instructions)
	}
	if act.ICache.Accesses != wantInstr {
		t.Fatalf("fetches = %d, want %d", act.ICache.Accesses, wantInstr)
	}
	if act.ICache.Misses == 0 {
		t.Fatal("cold I-cache produced no misses")
	}
}

func TestClientRepeatedOpsOnlyColdMiss(t *testing.T) {
	c := newTestClient(t)
	c.Op(ops.OpMBRTest, 1)
	coldStall := c.Activity().StallCycles
	c.Op(ops.OpMBRTest, 1000)
	if got := c.Activity().StallCycles; got != coldStall {
		t.Fatalf("warm op executions stalled: %d vs cold %d", got, coldStall)
	}
}

func TestClientDataAccessStalls(t *testing.T) {
	c := newTestClient(t)
	c.Load(ops.DataBase, 4)
	act := c.Activity()
	if act.DCache.Misses != 1 {
		t.Fatalf("cold load misses = %d", act.DCache.Misses)
	}
	if act.StallCycles != int64(c.cfg.MemLatency) {
		t.Fatalf("stall = %d, want %d", act.StallCycles, c.cfg.MemLatency)
	}
	c.Load(ops.DataBase, 4)
	if got := c.Activity().DCache.Misses; got != 1 {
		t.Fatalf("warm load missed again: %d", got)
	}
	c.Store(ops.DataBase+64, 8)
	if got := c.Activity().DCache.Writes; got == 0 {
		t.Fatal("store not counted as write")
	}
}

func TestClientZeroSizeAccessIsNoop(t *testing.T) {
	c := newTestClient(t)
	c.Load(ops.DataBase, 0)
	c.Store(ops.DataBase, -4)
	c.Op(ops.OpMBRTest, 0)
	c.Op(ops.OpMBRTest, -1)
	if act := c.Activity(); act.Cycles != 0 || act.Instructions != 0 {
		t.Fatalf("no-op accesses produced activity: %+v", act)
	}
}

func TestClientSeconds(t *testing.T) {
	c := newTestClient(t)
	if got := c.Seconds(int64(c.cfg.ClockHz)); got != 1.0 {
		t.Fatalf("Seconds(1s of cycles) = %v", got)
	}
}

func TestClientResetVariants(t *testing.T) {
	c := newTestClient(t)
	c.Op(ops.OpRefineRange, 5)
	c.Load(ops.DataBase, 64)
	c.ResetActivity()
	if act := c.Activity(); act.Cycles != 0 {
		t.Fatalf("activity after ResetActivity: %+v", act)
	}
	// Warm: repeating the same access must not miss.
	c.Load(ops.DataBase, 64)
	if got := c.Activity().DCache.Misses; got != 0 {
		t.Fatalf("ResetActivity lost cache contents: %d misses", got)
	}
	c.Reset()
	c.Load(ops.DataBase, 64)
	if got := c.Activity().DCache.Misses; got == 0 {
		t.Fatal("Reset kept cache contents")
	}
}

func TestServerFasterThanClient(t *testing.T) {
	// The same operation stream must take far fewer wall seconds on the
	// 1 GHz 4-issue server than on the 125 MHz single-issue client.
	client := newTestClient(t)
	server, err := NewServer(DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	work := func(rec ops.Recorder) {
		for i := 0; i < 200; i++ {
			rec.Op(ops.OpRefineRange, 10)
			rec.Load(ops.DataBase+uint64(i*64), 64)
		}
	}
	work(client)
	work(server)
	ct := client.Seconds(client.Activity().Cycles)
	st := server.Seconds(server.Cycles())
	if ratio := ct / st; ratio < 8 || ratio > 64 {
		t.Fatalf("client/server time ratio %.1f outside plausible [8,64]", ratio)
	}
}

func TestServerValidation(t *testing.T) {
	bad := DefaultServerConfig()
	bad.IssueWidth = 0
	if _, err := NewServer(bad); err == nil {
		t.Error("zero issue width accepted")
	}
	bad = DefaultServerConfig()
	bad.IPCEfficiency = 1.5
	if _, err := NewServer(bad); err == nil {
		t.Error("IPC efficiency >1 accepted")
	}
	bad = DefaultServerConfig()
	bad.OverlapFactor = 1.0
	if _, err := NewServer(bad); err == nil {
		t.Error("full overlap accepted")
	}
	bad = DefaultServerConfig()
	bad.L2 = cache.Config{SizeBytes: 100, LineBytes: 128, Assoc: 2}
	if _, err := NewServer(bad); err == nil {
		t.Error("bad L2 accepted")
	}
}

func TestServerMatchesTable4(t *testing.T) {
	cfg := DefaultServerConfig()
	if cfg.ClockHz != 1e9 {
		t.Errorf("server clock %v, want 1 GHz", cfg.ClockHz)
	}
	if cfg.IssueWidth != 4 {
		t.Errorf("issue width %d, want 4", cfg.IssueWidth)
	}
	if cfg.L2.SizeBytes != 1<<20 || cfg.L2.LineBytes != 128 || cfg.L2.Assoc != 2 {
		t.Errorf("L2 %+v not Table 4", cfg.L2)
	}
	if cfg.ICache.SizeBytes != 32*1024 || cfg.DCache.SizeBytes != 32*1024 {
		t.Errorf("L1s not Table 4")
	}
}

func TestServerL2Hierarchy(t *testing.T) {
	s, err := NewServer(DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Touch a working set bigger than L1 (32 KB) but smaller than L2
	// (1 MB): second pass should hit in L2, not memory.
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 256*1024; a += 64 {
			s.Load(ops.DataBase+a, 4)
		}
	}
	act := s.Activity()
	if act.L2.Accesses == 0 {
		t.Fatal("L2 never accessed")
	}
	// Memory reads should be ~ the cold fill only (4096 lines at 128 B is
	// 2048 L2 fills), far below total L1 misses.
	if act.MemReads >= act.DCache.Misses {
		t.Fatalf("mem reads %d >= L1 misses %d — L2 not filtering", act.MemReads, act.DCache.Misses)
	}
}

func TestActivityAdd(t *testing.T) {
	a := Activity{Instructions: 10, Cycles: 20, MemReads: 1}
	a.Add(Activity{Instructions: 5, Cycles: 7, MemWrites: 2})
	if a.Instructions != 15 || a.Cycles != 27 || a.MemReads != 1 || a.MemWrites != 2 {
		t.Fatalf("Add result %+v", a)
	}
	if got := a.CPI(); got != 27.0/15.0 {
		t.Fatalf("CPI = %v", got)
	}
	if (Activity{}).CPI() != 0 {
		t.Fatal("empty CPI not 0")
	}
}

func TestOpCostsCoverAllOps(t *testing.T) {
	costs := DefaultOpCosts()
	for i, c := range costs {
		if c.Instr <= 0 {
			t.Errorf("op %v has no instruction cost", ops.Op(i))
		}
		if c.CodeBytes() != c.Instr*4 {
			t.Errorf("op %v code bytes %d", ops.Op(i), c.CodeBytes())
		}
	}
}

func BenchmarkClientOpStream(b *testing.B) {
	c, err := NewClient(DefaultClientConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Op(ops.OpMBRTest, 1)
		c.Load(ops.IndexBase+uint64(i%100000)*20, 20)
	}
}
