// Package cpu provides the machine models that turn the instrumentation
// streams of internal/ops into cycles, following the paper's simulation
// setup (§5): the mobile client is a SimplePower-style single-issue 5-stage
// integer pipeline with split L1 caches (Table 3), and the server is a
// SimpleScalar-style 4-issue superscalar with a two-level cache hierarchy
// (Table 4).
//
// Both models are execution-driven: they implement ops.Recorder, so running
// a query against the R-tree with a model attached *is* the simulation.
// Cycles come out of instruction counts plus simulated cache-miss stalls;
// the activity counters (instructions, cache accesses and misses, memory
// transactions) feed the energy model in internal/energy.
package cpu

import (
	"fmt"

	"mobispatial/internal/cache"
	"mobispatial/internal/ops"
)

// OpCost describes the static cost of one abstract operation: how many
// instructions it executes and the byte size of its straight-line code
// footprint (for the I-cache trace). Footprints are 4 bytes per instruction
// (32-bit RISC encoding, as in the paper's StrongARM-class client).
type OpCost struct {
	Instr int
}

// CodeBytes returns the code footprint of the op.
func (c OpCost) CodeBytes() int { return c.Instr * 4 }

// DefaultOpCosts is the instruction budget per abstract operation. The
// numbers are hand counts of the obvious RISC instruction sequences for each
// operation (loads, compares, branches, FP adds/multiplies) and are in line
// with the magnitudes SimplePower would observe for the same C code.
func DefaultOpCosts() [ops.NumOps]OpCost {
	var t [ops.NumOps]OpCost
	t[ops.OpMBRTest] = OpCost{Instr: 14}   // 4 loads + 4 cmp/branch + loop
	t[ops.OpNodeVisit] = OpCost{Instr: 24} // header decode, stack push/pop
	t[ops.OpDistCalc] = OpCost{Instr: 38}  // MINDIST: clamps + 2 mul + sqrt amortized
	t[ops.OpHeapOp] = OpCost{Instr: 22}    // sift within sorted child list
	// Refinement costs model a full SDBMS refinement pass per candidate —
	// record decode, exact geometry against polyline data, result
	// assembly — which the paper singles out as "quite intensive ...
	// usually the most time consuming" (§3, §7). These are the dominant
	// client-side costs and were calibrated so the fully-at-client range
	// query lands in the paper's regime relative to the offload schemes.
	t[ops.OpRefineRange] = OpCost{Instr: 1900}    // record decode + exact clip of polyline vs window
	t[ops.OpRefinePoint] = OpCost{Instr: 900}     // record decode + incidence test
	t[ops.OpRefineNN] = OpCost{Instr: 1000}       // record decode + exact distance
	t[ops.OpResultAppend] = OpCost{Instr: 6}      // bounds check + store + count
	t[ops.OpCopyWord] = OpCost{Instr: 3}          // load + store + increment
	t[ops.OpProtoPacket] = OpCost{Instr: 1400}    // header build/parse, interrupt, driver
	t[ops.OpProtoByte] = OpCost{Instr: 3}         // checksum + copy into NIC buffer
	t[ops.OpIndexBuildEntry] = OpCost{Instr: 120} // sort share + MBR union + store
	t[ops.OpDispatch] = OpCost{Instr: 900}        // request parse, routine select, reply setup
	return t
}

// Activity aggregates what a machine model observed; it is the input to the
// energy model and the source of the cycle count.
type Activity struct {
	Instructions int64
	// Cycles is the total pipeline cycles including stalls.
	Cycles int64
	// StallCycles is the memory-stall portion of Cycles.
	StallCycles int64
	ICache      cache.Stats
	DCache      cache.Stats
	L2          cache.Stats // server only; zero for the client
	// MemReads/MemWrites are DRAM transactions (line fills / write-backs
	// from the lowest cache level).
	MemReads  int64
	MemWrites int64
}

// Add accumulates other into a.
func (a *Activity) Add(other Activity) {
	a.Instructions += other.Instructions
	a.Cycles += other.Cycles
	a.StallCycles += other.StallCycles
	a.ICache = addCacheStats(a.ICache, other.ICache)
	a.DCache = addCacheStats(a.DCache, other.DCache)
	a.L2 = addCacheStats(a.L2, other.L2)
	a.MemReads += other.MemReads
	a.MemWrites += other.MemWrites
}

func addCacheStats(a, b cache.Stats) cache.Stats {
	return cache.Stats{
		Accesses:  a.Accesses + b.Accesses,
		Misses:    a.Misses + b.Misses,
		Reads:     a.Reads + b.Reads,
		Writes:    a.Writes + b.Writes,
		WriteBack: a.WriteBack + b.WriteBack,
	}
}

// CPI returns cycles per instruction, or 0 when idle.
func (a Activity) CPI() float64 {
	if a.Instructions == 0 {
		return 0
	}
	return float64(a.Cycles) / float64(a.Instructions)
}

// ClientConfig is the mobile-device configuration of Table 3.
type ClientConfig struct {
	// ClockHz is the client clock. The paper sweeps it as a fraction
	// (1/8 .. 1) of the 1 GHz server clock.
	ClockHz float64
	// ICache / DCache geometries.
	ICache cache.Config
	DCache cache.Config
	// MemLatency is the DRAM access latency in cycles.
	MemLatency int
	// OpCosts is the instruction table; zero value means DefaultOpCosts.
	OpCosts *[ops.NumOps]OpCost
}

// DefaultClientConfig returns Table 3: single-issue 5-stage pipeline,
// 16 KB/4-way I-cache, 8 KB/4-way D-cache, 32 B lines, 100-cycle memory,
// clocked at serverHz/8 by default (125 MHz).
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		ClockHz:    DefaultServerConfig().ClockHz / 8,
		ICache:     cache.Config{SizeBytes: 16 * 1024, LineBytes: 32, Assoc: 4},
		DCache:     cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 4},
		MemLatency: 100,
	}
}

// Client is the SimplePower-style client model. It implements ops.Recorder.
type Client struct {
	cfg    ClientConfig
	costs  [ops.NumOps]OpCost
	icache *cache.Cache
	dcache *cache.Cache
	act    Activity
	// opCodeBase[i] is the simulated code address of op i's footprint.
	opCodeBase [ops.NumOps]uint64
}

// NewClient builds a client model; it returns an error for invalid cache
// geometry.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("cpu: client clock %v", cfg.ClockHz)
	}
	if err := cfg.ICache.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.DCache.Validate(); err != nil {
		return nil, err
	}
	if cfg.MemLatency <= 0 {
		return nil, fmt.Errorf("cpu: memory latency %d", cfg.MemLatency)
	}
	c := &Client{
		cfg:    cfg,
		icache: cache.New(cfg.ICache),
		dcache: cache.New(cfg.DCache),
	}
	if cfg.OpCosts != nil {
		c.costs = *cfg.OpCosts
	} else {
		c.costs = DefaultOpCosts()
	}
	addr := ops.CodeBase
	for i := range c.opCodeBase {
		c.opCodeBase[i] = addr
		addr += uint64(c.costs[i].CodeBytes())
		// Pad footprints to line boundaries so ops don't share lines.
		if rem := addr % 32; rem != 0 {
			addr += 32 - rem
		}
	}
	return c, nil
}

// Config returns the client configuration.
func (c *Client) Config() ClientConfig { return c.cfg }

// ClockHz returns the client clock frequency.
func (c *Client) ClockHz() float64 { return c.cfg.ClockHz }

// Op implements ops.Recorder: n executions of op's straight-line code.
func (c *Client) Op(op ops.Op, n int) {
	if n <= 0 {
		return
	}
	cost := c.costs[op]
	instr := int64(cost.Instr) * int64(n)
	c.act.Instructions += instr
	// Single-issue: one cycle per instruction plus stalls added below.
	c.act.Cycles += instr

	// I-cache: each fetch is an I-cache access energy-wise; hit/miss
	// behavior is per line. Only the first of n back-to-back passes over
	// the footprint can miss — every footprint fits in the I-cache and a
	// contiguous region occupies at most two ways per set, so passes 2..n
	// are guaranteed hits and need no simulation.
	c.act.ICache.Accesses += instr // fetch count for energy
	c.act.ICache.Reads += instr
	_, misses := c.icache.Access(c.opCodeBase[op], cost.CodeBytes(), false)
	c.addStall(int64(misses))
}

// addStall adds miss stall cycles.
func (c *Client) addStall(misses int64) {
	stall := misses * int64(c.cfg.MemLatency)
	c.act.Cycles += stall
	c.act.StallCycles += stall
	c.act.MemReads += misses
}

// Load implements ops.Recorder.
func (c *Client) Load(addr uint64, size int) { c.dataAccess(addr, size, false) }

// Store implements ops.Recorder.
func (c *Client) Store(addr uint64, size int) { c.dataAccess(addr, size, true) }

func (c *Client) dataAccess(addr uint64, size int, write bool) {
	if size <= 0 {
		return
	}
	accesses, misses := c.dcache.Access(addr, size, write)
	c.act.DCache.Accesses += int64(accesses)
	if write {
		c.act.DCache.Writes += int64(accesses)
	} else {
		c.act.DCache.Reads += int64(accesses)
	}
	c.act.DCache.Misses += int64(misses)
	c.addStall(int64(misses))
}

// Activity returns the accumulated activity. The embedded cache.Stats for
// the I-cache count fetches (for energy); the line-granular miss counts are
// folded in via Misses.
func (c *Client) Activity() Activity {
	act := c.act
	// Fold in line-level I-cache miss/write-back counts from the simulator.
	ist := c.icache.Stats()
	act.ICache.Misses = ist.Misses
	act.ICache.WriteBack = ist.WriteBack
	act.DCache.WriteBack = c.dcache.Stats().WriteBack
	act.MemWrites = c.dcache.Stats().WriteBack + ist.WriteBack
	return act
}

// Seconds converts a cycle count to wall time at the client clock.
func (c *Client) Seconds(cycles int64) float64 { return float64(cycles) / c.cfg.ClockHz }

// Reset clears activity and cache state (cold caches).
func (c *Client) Reset() {
	c.act = Activity{}
	c.icache.Reset()
	c.dcache.Reset()
}

// ResetActivity clears the activity counters but keeps cache contents warm —
// used between queries of one session, where the paper's memory-resident
// data stays cached across queries.
func (c *Client) ResetActivity() {
	// Preserve the simulator-internal totals by snapshotting deltas: the
	// caches keep counting, so re-zero our view instead.
	c.icache.ResetStatsOnly()
	c.dcache.ResetStatsOnly()
	c.act = Activity{}
}
