package broadcast

import (
	"math"
	"testing"

	"mobispatial/internal/nic"
)

func testProgram() Program {
	return Program{
		Items:            10000,
		RecordBytes:      76,
		IndexBytes:       4096,
		IndexReplication: 4,
		BandwidthBps:     2e6,
	}
}

func TestValidate(t *testing.T) {
	good := testProgram()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Program){
		func(p *Program) { p.Items = 0 },
		func(p *Program) { p.RecordBytes = 0 },
		func(p *Program) { p.IndexBytes = 0 },
		func(p *Program) { p.IndexReplication = 0 },
		func(p *Program) { p.BandwidthBps = 0 },
	}
	for i, mutate := range bad {
		p := testProgram()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCycleComposition(t *testing.T) {
	p := testProgram()
	want := p.DataSeconds() + 4*p.IndexSeconds()
	if math.Abs(p.CycleSeconds()-want) > 1e-12 {
		t.Fatalf("cycle %v, want %v", p.CycleSeconds(), want)
	}
}

func TestTuneRangeValidation(t *testing.T) {
	p := testProgram()
	if _, err := p.Tune(-1, 10, 0); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := p.Tune(0, 0, 0); err == nil {
		t.Error("zero span accepted")
	}
	if _, err := p.Tune(9995, 10, 0); err == nil {
		t.Error("overflowing span accepted")
	}
}

func TestTuningAccountingConsistent(t *testing.T) {
	p := testProgram()
	for _, phase := range []float64{0, 0.01, 0.3, 1.7, p.CycleSeconds() * 0.99} {
		tu, err := p.Tune(5000, 50, phase)
		if err != nil {
			t.Fatal(err)
		}
		if tu.ListenSeconds <= 0 || tu.DozeSeconds < 0 {
			t.Fatalf("phase %v: nonsense tuning %+v", phase, tu)
		}
		// Latency covers listen + doze + wake penalties.
		covered := tu.ListenSeconds + tu.DozeSeconds + float64(tu.Wakeups)*nic.SleepExitLatency
		if math.Abs(tu.LatencySeconds-covered) > 1e-9 {
			t.Fatalf("phase %v: latency %v != components %v", phase, tu.LatencySeconds, covered)
		}
		// Latency bounded by two cycles.
		if tu.LatencySeconds > 2*p.CycleSeconds() {
			t.Fatalf("phase %v: latency %v exceeds two cycles", phase, tu.LatencySeconds)
		}
	}
}

func TestIndexingSlashesEnergyVersusFlatBroadcast(t *testing.T) {
	// The headline result of indexing on air: the client dozes instead of
	// listening to half the cycle.
	p := testProgram()
	indexed, err := p.ExpectedTuning(5000, 50, 128)
	if err != nil {
		t.Fatal(err)
	}
	flat := p.NoIndexTuning(50)
	if indexed.EnergyJoules() >= flat.EnergyJoules()/3 {
		t.Fatalf("indexed energy %.4f J not <<< flat %.4f J",
			indexed.EnergyJoules(), flat.EnergyJoules())
	}
	// Indexing costs some latency (the cycle is longer and the client waits
	// for its bucket) — it cannot be faster than flat listening by more
	// than a cycle.
	if indexed.LatencySeconds <= 0 {
		t.Fatal("no latency recorded")
	}
}

func TestMoreReplicationShortensProbeLengthensCycle(t *testing.T) {
	base := testProgram()
	probe := func(m int) float64 {
		p := base
		p.IndexReplication = m
		tu, err := p.ExpectedTuning(5000, 50, 128)
		if err != nil {
			t.Fatal(err)
		}
		// The initial doze-to-index dominates the doze share difference.
		return tu.LatencySeconds
	}
	if c1, c8 := base.CycleSeconds(), func() float64 {
		p := base
		p.IndexReplication = 8
		return p.CycleSeconds()
	}(); c8 <= c1 {
		t.Fatalf("m=8 cycle %v not longer than m=4 %v", c8, c1)
	}
	_ = probe
}

func TestOptimalReplicationIsInterior(t *testing.T) {
	p := testProgram()
	m, err := p.OptimalReplication(5000, 50, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m < 1 || m > 32 {
		t.Fatalf("optimal m = %d out of range", m)
	}
	// With a 4 KB index against a 760 KB data payload the optimum should
	// not degenerate to the extremes.
	if m == 32 {
		t.Fatalf("optimal m = %d hit the search bound", m)
	}
}

func TestExpectedTuningDefaultSamples(t *testing.T) {
	p := testProgram()
	if _, err := p.ExpectedTuning(0, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTuneSparseValidation(t *testing.T) {
	p := testProgram()
	if _, err := p.TuneSparse(nil, 0); err == nil {
		t.Error("empty positions accepted")
	}
	if _, err := p.TuneSparse([]int{5, 5}, 0); err == nil {
		t.Error("duplicate positions accepted")
	}
	if _, err := p.TuneSparse([]int{5, 3}, 0); err == nil {
		t.Error("descending positions accepted")
	}
	if _, err := p.TuneSparse([]int{-1}, 0); err == nil {
		t.Error("negative position accepted")
	}
	if _, err := p.TuneSparse([]int{p.Items}, 0); err == nil {
		t.Error("out-of-range position accepted")
	}
}

func TestTuneSparseMatchesContiguousTune(t *testing.T) {
	// A contiguous position set must cost exactly what Tune charges.
	p := testProgram()
	positions := []int{4000, 4001, 4002, 4003, 4004}
	for _, phase := range []float64{0, 1.1, 3.7} {
		sparse, err := p.TuneSparse(positions, phase)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := p.Tune(4000, 5, phase)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sparse.ListenSeconds-plain.ListenSeconds) > 1e-12 ||
			math.Abs(sparse.LatencySeconds-plain.LatencySeconds) > 1e-12 {
			t.Fatalf("phase %v: sparse %+v != contiguous %+v", phase, sparse, plain)
		}
	}
}

func TestTuneSparseDozesBetweenRuns(t *testing.T) {
	p := testProgram()
	// Two widely separated runs: the client must doze through the gap, and
	// listen only for the records themselves (plus the index probe).
	sparse, err := p.TuneSparse([]int{100, 101, 9000, 9001}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	recordSecs := float64(p.RecordBytes*8) / p.BandwidthBps
	wantListen := 4 * recordSecs
	// Listen = probe + records; probe is at most one index segment.
	if sparse.ListenSeconds < wantListen || sparse.ListenSeconds > wantListen+p.IndexSeconds()+1e-9 {
		t.Fatalf("listen %.6f s outside [records, records+index]", sparse.ListenSeconds)
	}
	if sparse.Wakeups < 2 {
		t.Fatalf("wakeups = %d, want >= 2 (index + second run)", sparse.Wakeups)
	}
	// Sparse energy must be far below listening through the whole span.
	spanListen := (float64(9001-100) * recordSecs) * nic.RxPower
	if sparse.EnergyJoules() >= spanListen/3 {
		t.Fatalf("sparse tuning %.4f J not << continuous span %.4f J",
			sparse.EnergyJoules(), spanListen)
	}
}
