// Package broadcast models energy-efficient data dissemination on a
// broadcast channel with (1, m) air indexing, after Imielinski,
// Viswanathan, and Badrinath ("Energy Efficient Indexing on Air", SIGMOD
// 1994) — the related work the paper contrasts with its pull-style
// client/server setting (§2) and names as a future integration (§7).
//
// The server cyclically broadcasts a program of data records. With (1, m)
// indexing the index is repeated m times per cycle, evenly interleaved with
// the data, so a client that tunes in at a random moment only stays awake
// until the next index segment, learns when its records will air, and dozes
// (NIC SLEEP) until then. The trade-off: larger m shortens the initial
// probe (less time to the next index) but lengthens the whole cycle (more
// index repetitions), and the client pays the NIC sleep-exit latency at
// every wake-up.
//
// The model uses the same Table 2 NIC powers as the rest of the repository,
// so broadcast and pull results are directly comparable.
package broadcast

import (
	"fmt"
	"math"

	"mobispatial/internal/nic"
)

// Program describes one broadcast cycle.
type Program struct {
	// Items is the number of records in the program, broadcast in Hilbert
	// order so that spatially proximate records are adjacent on air.
	Items int
	// RecordBytes is the size of one record on air.
	RecordBytes int
	// IndexBytes is the size of one index segment on air.
	IndexBytes int
	// IndexReplication is m in (1, m) indexing: how many times the index
	// airs per cycle. 1 = classic index-once.
	IndexReplication int
	// BandwidthBps is the broadcast channel rate.
	BandwidthBps float64
}

// Validate reports configuration errors.
func (p Program) Validate() error {
	switch {
	case p.Items <= 0:
		return fmt.Errorf("broadcast: %d items", p.Items)
	case p.RecordBytes <= 0:
		return fmt.Errorf("broadcast: record bytes %d", p.RecordBytes)
	case p.IndexBytes <= 0:
		return fmt.Errorf("broadcast: index bytes %d", p.IndexBytes)
	case p.IndexReplication < 1:
		return fmt.Errorf("broadcast: index replication %d", p.IndexReplication)
	case p.BandwidthBps <= 0:
		return fmt.Errorf("broadcast: bandwidth %v", p.BandwidthBps)
	}
	return nil
}

// DataSeconds is the air time of all data records once.
func (p Program) DataSeconds() float64 {
	return float64(p.Items*p.RecordBytes*8) / p.BandwidthBps
}

// IndexSeconds is the air time of one index segment.
func (p Program) IndexSeconds() float64 {
	return float64(p.IndexBytes*8) / p.BandwidthBps
}

// CycleSeconds is the full broadcast-cycle duration: the data plus m index
// segments.
func (p Program) CycleSeconds() float64 {
	return p.DataSeconds() + float64(p.IndexReplication)*p.IndexSeconds()
}

// Tuning is the cost of answering one query from the broadcast.
type Tuning struct {
	// LatencySeconds is the access time: tune-in until the last wanted
	// record has been received.
	LatencySeconds float64
	// ListenSeconds is the time the NIC spends in RECEIVE.
	ListenSeconds float64
	// DozeSeconds is the time the NIC spends in SLEEP.
	DozeSeconds float64
	// Wakeups counts SLEEP exits (each costs nic.SleepExitLatency, spent at
	// idle power, included in LatencySeconds).
	Wakeups int
}

// EnergyJoules is the client NIC energy of the tuning (the CPU is assumed
// blocked in its low-power mode throughout; add that separately if needed).
func (t Tuning) EnergyJoules() float64 {
	return t.ListenSeconds*nic.RxPower +
		t.DozeSeconds*nic.SleepPower +
		float64(t.Wakeups)*nic.SleepExitLatency*nic.IdlePower
}

// Tune computes the cost of retrieving `span` consecutive records whose
// first record starts at data offset `firstItem` (in items), for a client
// that tunes in `phase` seconds into the cycle. Typical analyses average
// Tune over random phases — use ExpectedTuning for that.
func (p Program) Tune(firstItem, span int, phase float64) (Tuning, error) {
	if err := p.Validate(); err != nil {
		return Tuning{}, err
	}
	if firstItem < 0 || span <= 0 || firstItem+span > p.Items {
		return Tuning{}, fmt.Errorf("broadcast: bad item range [%d,%d) of %d", firstItem, firstItem+span, p.Items)
	}
	cycle := p.CycleSeconds()
	phase = math.Mod(phase, cycle)

	// The cycle layout: m equal chunks, each = [index segment][data/m].
	chunk := cycle / float64(p.IndexReplication)

	// 1. Initial probe: listen from tune-in until the end of the next index
	// segment. Time to the next chunk boundary:
	intoChunk := math.Mod(phase, chunk)
	var probeWait, probeListen float64
	if intoChunk < p.IndexSeconds() {
		// Tuned in during an index segment: listen to its remainder
		// (simplification: partial index still yields the directory).
		probeListen = p.IndexSeconds() - intoChunk
	} else {
		probeWait = chunk - intoChunk // doze to the next index
		probeListen = p.IndexSeconds()
	}

	// 2. The target records air at a fixed offset within the data portion.
	// Find their absolute time in the cycle: data item k airs within chunk
	// k/(items/m), after that chunk's index segment.
	perChunk := float64(p.Items) / float64(p.IndexReplication)
	recordSecs := float64(p.RecordBytes*8) / p.BandwidthBps
	itemStart := func(k int) float64 {
		c := float64(k) / perChunk
		chunkIdx := math.Floor(c)
		within := (float64(k) - chunkIdx*perChunk) * recordSecs
		return chunkIdx*chunk + p.IndexSeconds() + within
	}

	// Absolute time (from tune-in) when the probe completes.
	tProbe := probeWait + probeListen
	// Cycle-time at probe completion.
	probeCycleTime := math.Mod(phase+tProbe, cycle)

	start := itemStart(firstItem)
	end := itemStart(firstItem+span-1) + recordSecs

	// Wait from probe completion to the records (possibly next cycle).
	wait := start - probeCycleTime
	if wait < 0 {
		wait += cycle
	}
	listen := end - start
	// Records can straddle index segments; the client sleeps through those
	// but we fold that into listen time for simplicity (the index segments
	// within [start,end] are small); count the straddled index time as doze.
	straddled := 0.0
	for c := 1; c < p.IndexReplication; c++ {
		boundary := float64(c) * chunk
		if boundary > start && boundary < end {
			straddled += p.IndexSeconds()
			listen -= p.IndexSeconds()
		}
	}

	t := Tuning{
		LatencySeconds: tProbe + wait + listen + straddled,
		ListenSeconds:  probeListen + listen,
		DozeSeconds:    probeWait + wait + straddled,
		Wakeups:        1, // doze→listen for the records
	}
	if probeWait > 0 {
		t.Wakeups++ // doze→listen for the index
	}
	t.LatencySeconds += float64(t.Wakeups) * nic.SleepExitLatency
	return t, nil
}

// ExpectedTuning averages Tune over n uniformly random tune-in phases.
func (p Program) ExpectedTuning(firstItem, span, n int) (Tuning, error) {
	if n <= 0 {
		n = 64
	}
	var sum Tuning
	cycle := p.CycleSeconds()
	for i := 0; i < n; i++ {
		phase := cycle * (float64(i) + 0.5) / float64(n)
		t, err := p.Tune(firstItem, span, phase)
		if err != nil {
			return Tuning{}, err
		}
		sum.LatencySeconds += t.LatencySeconds
		sum.ListenSeconds += t.ListenSeconds
		sum.DozeSeconds += t.DozeSeconds
		sum.Wakeups += t.Wakeups
	}
	f := float64(n)
	return Tuning{
		LatencySeconds: sum.LatencySeconds / f,
		ListenSeconds:  sum.ListenSeconds / f,
		DozeSeconds:    sum.DozeSeconds / f,
		Wakeups:        int(math.Round(float64(sum.Wakeups) / f)),
	}, nil
}

// TuneSparse computes the cost of retrieving an arbitrary set of record
// positions (sorted ascending) in one cycle: after the index probe the
// client dozes between the contiguous runs of wanted records, waking once
// per run. This is how an indexed client retrieves a spatially filtered
// subset whose records are not perfectly adjacent on air.
func (p Program) TuneSparse(positions []int, phase float64) (Tuning, error) {
	if err := p.Validate(); err != nil {
		return Tuning{}, err
	}
	if len(positions) == 0 {
		return Tuning{}, fmt.Errorf("broadcast: empty position set")
	}
	for i, pos := range positions {
		if pos < 0 || pos >= p.Items {
			return Tuning{}, fmt.Errorf("broadcast: position %d out of range", pos)
		}
		if i > 0 && pos <= positions[i-1] {
			return Tuning{}, fmt.Errorf("broadcast: positions not strictly ascending")
		}
	}
	// Runs of consecutive positions.
	type run struct{ first, span int }
	var runs []run
	cur := run{first: positions[0], span: 1}
	for _, pos := range positions[1:] {
		if pos == cur.first+cur.span {
			cur.span++
			continue
		}
		runs = append(runs, cur)
		cur = run{first: pos, span: 1}
	}
	runs = append(runs, cur)

	// Reuse Tune for the first run (it pays the probe), then extend with
	// the later runs: doze from the end of one run to the start of the
	// next, listen through it.
	t, err := p.Tune(runs[0].first, runs[0].span, phase)
	if err != nil {
		return Tuning{}, err
	}
	recordSecs := float64(p.RecordBytes*8) / p.BandwidthBps
	chunk := p.CycleSeconds() / float64(p.IndexReplication)
	perChunk := float64(p.Items) / float64(p.IndexReplication)
	itemStart := func(k int) float64 {
		c := math.Floor(float64(k) / perChunk)
		within := (float64(k) - c*perChunk) * recordSecs
		return c*chunk + p.IndexSeconds() + within
	}
	for i := 1; i < len(runs); i++ {
		prevEnd := itemStart(runs[i-1].first+runs[i-1].span-1) + recordSecs
		start := itemStart(runs[i].first)
		listen := float64(runs[i].span) * recordSecs
		t.DozeSeconds += start - prevEnd
		t.ListenSeconds += listen
		t.LatencySeconds += (start - prevEnd) + listen + nic.SleepExitLatency
		t.Wakeups++
	}
	return t, nil
}

// ExpectedTuningSparse averages TuneSparse over n uniformly random tune-in
// phases.
func (p Program) ExpectedTuningSparse(positions []int, n int) (Tuning, error) {
	if n <= 0 {
		n = 64
	}
	var sum Tuning
	cycle := p.CycleSeconds()
	for i := 0; i < n; i++ {
		phase := cycle * (float64(i) + 0.5) / float64(n)
		t, err := p.TuneSparse(positions, phase)
		if err != nil {
			return Tuning{}, err
		}
		sum.LatencySeconds += t.LatencySeconds
		sum.ListenSeconds += t.ListenSeconds
		sum.DozeSeconds += t.DozeSeconds
		sum.Wakeups += t.Wakeups
	}
	f := float64(n)
	return Tuning{
		LatencySeconds: sum.LatencySeconds / f,
		ListenSeconds:  sum.ListenSeconds / f,
		DozeSeconds:    sum.DozeSeconds / f,
		Wakeups:        int(math.Round(float64(sum.Wakeups) / f)),
	}, nil
}

// NoIndexTuning is the flat-broadcast baseline: without an air index the
// client must listen from tune-in until its records pass — on average half
// a cycle of full-power reception plus the records themselves.
func (p Program) NoIndexTuning(span int) Tuning {
	recordSecs := float64(p.RecordBytes*8) / p.BandwidthBps
	data := p.DataSeconds()
	return Tuning{
		LatencySeconds: data/2 + float64(span)*recordSecs,
		ListenSeconds:  data/2 + float64(span)*recordSecs,
	}
}

// OptimalReplication returns the m minimizing expected tuning energy for
// the program's parameters, searched over 1..maxM.
func (p Program) OptimalReplication(firstItem, span, maxM int) (int, error) {
	if maxM < 1 {
		maxM = 16
	}
	bestM, bestE := 1, math.Inf(1)
	for m := 1; m <= maxM; m++ {
		q := p
		q.IndexReplication = m
		t, err := q.ExpectedTuning(firstItem, span, 64)
		if err != nil {
			return 0, err
		}
		if e := t.EnergyJoules(); e < bestE {
			bestE, bestM = e, m
		}
	}
	return bestM, nil
}
